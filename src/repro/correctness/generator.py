"""Randomized GHCN-shaped documents and small JSONiq queries.

The differential harness needs inputs beyond the five paper queries and
the well-formed benchmark dataset — the bugs worth finding live on the
edges: missing keys, null values, duplicate keys inside one object,
int/float mixes, empty results arrays, wrapped vs unwrapped file
shapes, and multi-partition layouts.

Each :class:`GeneratedCase` pairs a query text with the partitioned
document texts it runs over **and** a plain-Python oracle closure that
computes the expected result sequence directly from parsed items —
mirroring the engine's specified semantics (general comparisons with
``()`` are false, ``null eq null`` is true, missing grouping keys form
their own group) without touching the algebra or the rewrite rules.

Documents are serialized by hand from ordered key/value pair lists so
the generator can emit *duplicate keys* — something no dict-based
serializer can produce — while the oracle works over the parsed
(last-occurrence-wins) form.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, replace
from typing import Callable

from repro.jsonlib.items import Item
from repro.jsonlib.parser import parse_many

COLLECTION = "/gen"

_STATIONS = ["GHCND:USW1", "GHCND:USW2", "GHCND:CA3", "S4"]
_DATA_TYPES = ["TMIN", "TMAX", "WIND", "PRCP"]
_DATES = [
    "20031225T00:00",
    "20041225T00:00",
    "20020301T06:30",
    "2003-12-25T00:00:00",
    "2001-07-14T12:00:00",
]


@dataclass(frozen=True)
class GeneratedCase:
    """One differential test case: a query over partitioned documents,
    with an independent oracle for the expected result sequence."""

    name: str
    query_text: str
    #: list of partitions, each a list of JSON file texts
    #: (one top-level document per line within a text)
    partitions: tuple
    #: oracle(documents) -> expected item sequence (compared
    #: order-insensitively by the harness)
    oracle: Callable[[list], list]

    def documents(self) -> list[Item]:
        """Parse every partition text into its top-level items."""
        docs: list[Item] = []
        for partition in self.partitions:
            for text in partition:
                docs.extend(parse_many(text))
        return docs

    def expected(self) -> list:
        return self.oracle(self.documents())

    def with_partitions(self, partitions) -> "GeneratedCase":
        return replace(self, partitions=tuple(tuple(p) for p in partitions))


# ---------------------------------------------------------------------------
# Document generation
# ---------------------------------------------------------------------------


def _record_pairs(rng: random.Random) -> list[tuple[str, object]]:
    """Ordered key/value pairs of one measurement; keys may repeat."""
    pairs: list[tuple[str, object]] = []
    # date: a parseable timestamp or missing (null would make the paper
    # queries' dateTime() raise, which is an *error* path, not a
    # semantics difference).
    if rng.random() < 0.85:
        pairs.append(("date", rng.choice(_DATES)))
    data_type = None
    if rng.random() < 0.9:
        data_type = rng.choice(_DATA_TYPES) if rng.random() < 0.9 else None
        pairs.append(("dataType", data_type))
    if rng.random() < 0.85:
        station = rng.choice(_STATIONS) if rng.random() < 0.85 else None
        pairs.append(("station", station))
    # value: TMIN/TMAX records keep numeric values (the paper's Q2
    # subtracts them; null there is an arithmetic error, again an error
    # path) — other records also exercise null and missing.
    if data_type in ("TMIN", "TMAX"):
        value = rng.choice([rng.randint(-400, 400), rng.uniform(-40.0, 40.0)])
        pairs.append(("value", value))
    elif rng.random() < 0.8:
        value = rng.choice(
            [rng.randint(-400, 400), rng.uniform(-40.0, 40.0), None]
        )
        pairs.append(("value", value))
    if rng.random() < 0.15:
        # Variable length on purpose: a join keyed on
        # ``("attributes")()`` sees empty sequences (no match),
        # singletons (a scalar key), and multi-item sequences (a
        # pinned ItemTypeError — value comparison over a multi-item
        # sequence), exercising all three join-key shapes.
        members = [",", "", rng.choice("abc")]
        pairs.append(("attributes", members[: rng.randint(0, 3)]))
    # Inject duplicate keys: repeat an existing key with a fresh value;
    # the parsed record keeps the *last* occurrence.
    if pairs and rng.random() < 0.25:
        key, _ = rng.choice(pairs)
        duplicate: object
        if key == "date":
            duplicate = rng.choice(_DATES)
        elif key == "dataType":
            duplicate = rng.choice(_DATA_TYPES)
        elif key == "station":
            duplicate = rng.choice(_STATIONS)
        elif key == "value":
            duplicate = rng.randint(-400, 400)
        else:
            duplicate = ["x"]
        position = rng.randrange(len(pairs) + 1)
        pairs.insert(position, (key, duplicate))
    return pairs


def _serialize_pairs(pairs: list[tuple[str, object]]) -> str:
    """JSON object text preserving pair order — including duplicates."""
    inner = ", ".join(
        f"{json.dumps(key)}: {json.dumps(value)}" for key, value in pairs
    )
    return "{" + inner + "}"


def _document_text(rng: random.Random, wrapped: bool) -> str:
    """One top-level document holding 0-5 measurement records."""
    records = [
        _serialize_pairs(_record_pairs(rng))
        for _ in range(rng.randint(0, 5))
    ]
    results = "[" + ", ".join(records) + "]"
    count = json.dumps({"count": len(records)})
    body = f'{{"metadata": {count}, "results": {results}}}'
    if wrapped:
        return f'{{"root": [{body}]}}'
    return body


def generate_partitions(rng: random.Random) -> tuple:
    """1-3 partitions, each one file text of newline-separated docs."""
    wrapped = rng.random() < 0.5
    partitions = []
    for _ in range(rng.randint(1, 3)):
        lines = [
            _document_text(rng, wrapped)
            for _ in range(rng.randint(1, 4))
        ]
        partitions.append((("\n".join(lines)),))
    return tuple(partitions), wrapped


def _scan_path(wrapped: bool) -> str:
    return '("root")()("results")()' if wrapped else '("results")()'


# ---------------------------------------------------------------------------
# Query templates (each with its oracle closure)
# ---------------------------------------------------------------------------


def _measurements(documents: list[Item]):
    from repro.correctness.oracle import iter_measurements

    return list(iter_measurements(documents))


def _template_path(rng, wrapped):
    key = rng.choice(["station", "date", "value"])
    query = (
        f'for $m in collection("{COLLECTION}"){_scan_path(wrapped)} '
        f'return $m("{key}")'
    )

    def oracle(documents):
        return [m[key] for m in _measurements(documents) if key in m]

    return f"path-{key}", query, oracle


def _template_keys(rng, wrapped):
    query = (
        f'for $m in collection("{COLLECTION}"){_scan_path(wrapped)} '
        "return $m()"
    )

    def oracle(documents):
        out = []
        for m in _measurements(documents):
            out.extend(m.keys())
        return out

    return "keys", query, oracle


def _template_predicate_eq(rng, wrapped):
    wanted = rng.choice(_DATA_TYPES)
    returned = rng.choice(["station", "date"])
    query = (
        f'for $m in collection("{COLLECTION}"){_scan_path(wrapped)} '
        f'where $m("dataType") eq "{wanted}" '
        f'return $m("{returned}")'
    )

    def oracle(documents):
        return [
            m[returned]
            for m in _measurements(documents)
            if m.get("dataType", _ABSENT) == wanted and returned in m
        ]

    return f"select-{wanted}", query, oracle


def _template_predicate_gt(rng, wrapped):
    threshold = rng.randint(-100, 100)
    query = (
        f'for $m in collection("{COLLECTION}"){_scan_path(wrapped)} '
        f'where $m("value") gt {threshold} '
        f'return $m("station")'
    )

    def oracle(documents):
        out = []
        for m in _measurements(documents):
            value = m.get("value", _ABSENT)
            # () gt n is false; null gt n is false (incomparable).
            if value is _ABSENT or value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if value > threshold and "station" in m:
                out.append(m["station"])
        return out

    return f"select-gt{threshold}", query, oracle


def _template_group_count(rng, wrapped):
    wanted = rng.choice(["TMIN", "TMAX", "WIND"])
    query = (
        f'for $m in collection("{COLLECTION}"){_scan_path(wrapped)} '
        f'where $m("dataType") eq "{wanted}" '
        'group by $d := $m("date") '
        "return count($m)"
    )

    def oracle(documents):
        from repro.jsonlib.items import canonical_item

        groups: dict = {}
        for m in _measurements(documents):
            if m.get("dataType", _ABSENT) != wanted:
                continue
            key = (
                canonical_item(m["date"]) if "date" in m else _ABSENT
            )
            groups[key] = groups.get(key, 0) + 1
        return list(groups.values())

    return f"group-count-{wanted}", query, oracle


def _template_join(rng, wrapped):
    left_type, right_type = rng.sample(_DATA_TYPES, 2)
    query = (
        f'for $a in collection("{COLLECTION}"){_scan_path(wrapped)} '
        f'for $b in collection("{COLLECTION}"){_scan_path(wrapped)} '
        f'where $a("station") eq $b("station") '
        f'and $a("dataType") eq "{left_type}" '
        f'and $b("dataType") eq "{right_type}" '
        'return $b("value")'
    )

    def oracle(documents):
        from repro.jsonlib.items import canonical_item

        measurements = _measurements(documents)
        left_stations = [
            canonical_item(m["station"])
            for m in measurements
            if m.get("dataType", _ABSENT) == left_type and "station" in m
        ]
        out = []
        for b in measurements:
            if b.get("dataType", _ABSENT) != right_type or "station" not in b:
                continue
            key = canonical_item(b["station"])
            for other in left_stations:
                if other == key:
                    if "value" in b:
                        out.append(b["value"])
        return out

    return f"join-{left_type}-{right_type}", query, oracle


def _template_join_seq(rng, wrapped):
    """Self-join keyed on a *sequence* — ``$a("attributes")()``.

    The engine's pinned semantics for value comparisons over multi-item
    sequences is an error (:class:`~repro.errors.ItemTypeError`), and
    the hash/grace/exchange join paths must agree with the naive
    nested Select exactly: empty key sequences never match, singleton
    sequences compare as scalars, multi-item sequences raise.  The
    oracle raises the same error, which the harness matches against
    the engine's (possibly wrapped) failure.
    """
    query = (
        f'for $a in collection("{COLLECTION}"){_scan_path(wrapped)} '
        f'for $b in collection("{COLLECTION}"){_scan_path(wrapped)} '
        f'where $a("attributes")() eq $b("attributes")() '
        'return $b("station")'
    )

    def oracle(documents):
        from repro.errors import ItemTypeError
        from repro.jsonlib.items import canonical_item

        measurements = _measurements(documents)
        keys = []
        for m in measurements:
            attributes = m.get("attributes", _ABSENT)
            members = attributes if isinstance(attributes, list) else []
            if len(members) > 1:
                raise ItemTypeError(
                    "value comparison 'eq' over a multi-item sequence"
                )
            keys.append(
                canonical_item(members[0]) if members else _ABSENT
            )
        out = []
        for b, b_key in zip(measurements, keys):
            if b_key is _ABSENT:
                continue
            for a_key in keys:
                if a_key is not _ABSENT and a_key == b_key:
                    if "station" in b:
                        out.append(b["station"])
        return out

    return "join-seq", query, oracle


_ABSENT = ("absent",)

_TEMPLATES = [
    _template_path,
    _template_keys,
    _template_predicate_eq,
    _template_predicate_gt,
    _template_group_count,
    _template_join,
    _template_join_seq,
]


def generate_case(rng: random.Random, index: int) -> GeneratedCase:
    """One seeded (query, data) pair with its oracle."""
    partitions, wrapped = generate_partitions(rng)
    template = _TEMPLATES[index % len(_TEMPLATES)]
    label, query, oracle = template(rng, wrapped)
    shape = "wrapped" if wrapped else "flat"
    return GeneratedCase(
        name=f"gen{index:04d}-{label}-{shape}",
        query_text=query,
        partitions=partitions,
        oracle=oracle,
    )


def generate_cases(seed: int, count: int) -> list[GeneratedCase]:
    """*count* deterministic cases derived from *seed*."""
    rng = random.Random(seed)
    return [generate_case(rng, index) for index in range(count)]
