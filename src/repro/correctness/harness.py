"""The differential harness: one query, every configuration, one answer.

Runs each query through the full matrix of

- rewrite-rule toggles ({all on, each family off, all off} —
  :data:`repro.algebra.rules.TOGGLE_CONFIGS`),
- execution backends (sequential, thread, process),
- DATASCAN projection on/off (off replaces the projecting scanners
  with :class:`EagerNavigationSource`: parse everything, then
  navigate — the definitional semantics),
- scan modes (:data:`SCAN_MODE_AXIS`: ``eager`` parse-then-navigate,
  ``ondemand`` structural-index tape, ``cached-warm`` on-demand through
  the segment cache compared on the warm execution) — every projected
  cell runs all three and the items *and* degradation reports must be
  byte-identical, not merely canonically equal,
- bounded memory (a :data:`SPILL_BUDGET_BYTES` budget tiny enough to
  force the blocking operators through their spill-to-disk paths),
- injected worker crashes (a :class:`~repro.resilience.faults.FaultPlan`
  kill schedule that forces the worker-loss recovery path, paper
  queries only),
- cost-based planning on/off (cost planning only re-shapes the
  physical join — build side, exchange, skew splitting — so the
  answer must be identical with it disabled; paper queries get
  explicit cost-off cells on every backend plus spill/crash variants,
  generated cases a rotating cost-off cell),

and asserts that every cell's result is canonically equal to an
independent oracle.  The grouped queries' output order is genuinely
nondeterministic across strategies, so results compare as multisets of
canonical item forms (:func:`canonical_result`).

For the five paper queries the oracle is
:mod:`repro.correctness.oracle` over the benchmark generator's dataset;
beyond those, seeded random (query, data) pairs from
:mod:`repro.correctness.generator` carry their own oracle closures.
When a generated pair disagrees, a greedy deterministic shrinker
(:func:`shrink_case`) minimizes the documents to a small repro before
reporting.

Every compile in the harness goes through the default pipeline, so the
plan invariant validator runs after every rule fire of every cell.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.algebra.rules import TOGGLE_CONFIGS, RewriteConfig
from repro.correctness.generator import (
    COLLECTION,
    GeneratedCase,
    generate_cases,
)
from repro.correctness.oracle import oracle_result
from repro.data.catalog import InMemorySource
from repro.data.generator import SensorDataConfig, generate_file_text
from repro.errors import ReproError
from repro.hyracks.backends import BACKENDS
from repro.jsonlib.items import canonical_item
from repro.jsonlib.parser import parse_many
from repro.jsonlib.path import navigate_sequence
from repro.processor import JsonProcessor
from repro.resilience.faults import FaultPlan

BACKEND_NAMES = ("sequential", "thread", "process")
PROJECTION_MODES = ("projected", "eager")
#: The scan-mode axis: every projected cell runs under all three and
#: must produce byte-identical items and degradation reports.
#: ``cached-warm`` = on-demand scan through the segment cache, compared
#: on the *second* (warm) execution so the result comes from segment
#: files, not JSON.
SCAN_MODE_AXIS = ("eager", "ondemand", "cached-warm")

#: memory budget for the forced-spill matrix cells — small enough that
#: the paper datasets overflow every blocking operator, large enough
#: that non-spillable expression materialization still fits
SPILL_BUDGET_BYTES = 4096


# ---------------------------------------------------------------------------
# Result canonicalization
# ---------------------------------------------------------------------------


def _fold_floats(node):
    """Format floats at 12 significant digits inside a canonical form.

    Float addition is not associative: two-step aggregation sums
    per-partition then combines, the oracle sums in document order, and
    the two legitimately differ in the last ulp (Q2's average).  Twelve
    significant digits is far tighter than any real semantics bug and
    far looser than summation-order noise.
    """
    if isinstance(node, float):
        return format(node, ".12g")
    if isinstance(node, tuple):
        return tuple(_fold_floats(child) for child in node)
    return node


def canonical_result(items: list) -> tuple:
    """Order-insensitive canonical form of a result sequence.

    Group-by output order depends on hash-table iteration and partition
    merge order, which differ legitimately across backends; comparing
    sorted canonical reprs makes equality mean "same multiset of
    values" with value-based numeric equality (``1`` vs ``1.0``) and
    last-ulp float tolerance (see :func:`_fold_floats`).
    """
    return tuple(
        sorted(repr(_fold_floats(canonical_item(item))) for item in items)
    )


# ---------------------------------------------------------------------------
# The projection-off data source
# ---------------------------------------------------------------------------


class EagerNavigationSource:
    """DataSource wrapper replacing projected scans with parse+navigate.

    ``scan_collection`` is re-implemented as "materialize every item,
    then navigate the path" — the definitional semantics the projecting
    scanners (event projector, raw-text skipper) must be equivalent to.
    Module-level and state-free so it pickles to process workers.
    """

    def __init__(self, inner):
        self._inner = inner

    def scan_collection(self, name, path, partition=None):
        return navigate_sequence(
            self._inner.read_collection(name, partition), path
        )

    def read_collection(self, name, partition=None):
        return self._inner.read_collection(name, partition)

    def read_document(self, uri):
        return self._inner.read_document(uri)

    def partition_count(self, name):
        return self._inner.partition_count(name)

    def attach_degradation(self, report):
        self._inner.attach_degradation(report)

    def attach_scan_counters(self, counters):
        self._inner.attach_scan_counters(counters)

    def configure_scan(self, scan_mode=None, segment_cache_dir=None):
        configure = getattr(self._inner, "configure_scan", None)
        if configure is not None:
            configure(
                scan_mode=scan_mode, segment_cache_dir=segment_cache_dir
            )


# ---------------------------------------------------------------------------
# Report structures
# ---------------------------------------------------------------------------


@dataclass
class Mismatch:
    """One disagreeing (or erroring) cell of the matrix."""

    case: str
    config: str
    backend: str
    projection: str
    kind: str  # "mismatch" | "error" | "missing-error" | "scan-mode-divergence"
    detail: str
    #: scan mode of the failing run (see :data:`SCAN_MODE_AXIS`)
    scan_mode: str = "ondemand"
    #: True when the cell ran under the forced-spill memory budget
    spill: bool = False
    #: True when the cell ran with an injected worker crash
    crash: bool = False
    #: True when the cell ran with cost-based planning enabled
    cost: bool = True
    #: minimized repro (shrunk partitions + query), when available
    repro_query: str | None = None
    repro_partitions: list | None = None

    def to_dict(self) -> dict:
        return {
            "case": self.case,
            "config": self.config,
            "backend": self.backend,
            "projection": self.projection,
            "scan_mode": self.scan_mode,
            "spill": self.spill,
            "crash": self.crash,
            "cost": self.cost,
            "kind": self.kind,
            "detail": self.detail,
            "repro_query": self.repro_query,
            "repro_partitions": self.repro_partitions,
        }


@dataclass
class DiffCheckReport:
    """Outcome of one full differential run."""

    seed: int
    budget: str
    paper_cells: int = 0
    generated_cells: int = 0
    generated_cases: int = 0
    mismatches: list = field(default_factory=list)

    @property
    def total_cells(self) -> int:
        return self.paper_cells + self.generated_cells

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "paper_cells": self.paper_cells,
            "generated_cases": self.generated_cases,
            "generated_cells": self.generated_cells,
            "total_cells": self.total_cells,
            "mismatch_count": len(self.mismatches),
            "ok": self.ok,
            "mismatches": [m.to_dict() for m in self.mismatches],
        }


# ---------------------------------------------------------------------------
# Matrix execution
# ---------------------------------------------------------------------------


class _MatrixRunner:
    """Shares data sources and backend instances across matrix cells
    (the process backend's worker pool is expensive to start)."""

    def __init__(self, max_workers: int = 2):
        import tempfile

        self._backends = {
            name: BACKENDS[name](max_workers=max_workers)
            for name in BACKEND_NAMES
        }
        self._spill_dir = tempfile.mkdtemp(prefix="repro-diffcheck-spill-")
        # Shared across cells: keys include content hash + projection +
        # policy, so reuse across cases is safe (and a pre-warmed key
        # only makes a "cold" populate pass cheaper).
        self._cache_dir = tempfile.mkdtemp(prefix="repro-diffcheck-cache-")

    def close(self) -> None:
        import shutil

        for backend in self._backends.values():
            close = getattr(backend, "close", None)
            if close is not None:
                close()
        shutil.rmtree(self._spill_dir, ignore_errors=True)
        shutil.rmtree(self._cache_dir, ignore_errors=True)

    def run(
        self,
        source,
        query_text: str,
        config: RewriteConfig,
        backend_name: str,
        projection: str,
        scan_mode: str = "ondemand",
        memory_budget: int | None = None,
        fault_plan: FaultPlan | None = None,
        cost: bool = True,
    ):
        """Run one cell; returns the full :class:`QueryResult`.

        ``scan_mode="cached-warm"`` executes twice through the shared
        segment cache and returns the warm result — the one whose items
        came from segment files.
        """
        configure = getattr(source, "configure_scan", None)
        if configure is not None:
            if scan_mode == "cached-warm":
                configure(
                    scan_mode="ondemand", segment_cache_dir=self._cache_dir
                )
            else:
                configure(scan_mode=scan_mode, segment_cache_dir="")
        if projection == "eager":
            source = EagerNavigationSource(source)
        processor = JsonProcessor(
            source=source,
            rewrite=config,
            backend=self._backends[backend_name],
            memory_budget_bytes=memory_budget,
            spill_dir=self._spill_dir,
            fault_plan=fault_plan,
            cost=cost,
        )
        if scan_mode == "cached-warm":
            processor.execute(query_text)  # cold pass populates segments
        return processor.execute(query_text)


def _cells(configs, backends, projections):
    for config_name in configs:
        for backend_name in backends:
            for projection in projections:
                yield config_name, backend_name, projection


@dataclass(frozen=True)
class ExpectedError:
    """An oracle that *raises*: every cell must fail the same way.

    Used by the generated cases whose semantics are a pinned error —
    e.g. a join keyed on a multi-item sequence.  The engine's failure
    may arrive wrapped (partition execution wraps worker errors), so
    matching walks the cause chain.
    """

    type_name: str
    message: str

    def matches(self, error: BaseException) -> bool:
        seen = set()
        node: BaseException | None = error
        while node is not None and id(node) not in seen:
            seen.add(id(node))
            if (
                type(node).__name__ == self.type_name
                or self.message in str(node)
            ):
                return True
            node = node.__cause__ or node.__context__
        return False


def _check_cell(
    runner: _MatrixRunner,
    report: DiffCheckReport,
    source,
    case_name: str,
    query_text: str,
    expected,
    config_name: str,
    backend_name: str,
    projection: str,
    memory_budget: int | None = None,
    fault_plan: FaultPlan | None = None,
    cost: bool = True,
) -> tuple[int, Mismatch | None]:
    """Check one matrix cell; returns ``(runs_executed, mismatch)``.

    Projected cells sweep the full :data:`SCAN_MODE_AXIS`: every scan
    mode must match the oracle, and beyond canonical equality the
    items and the degradation report must be *byte-identical*
    (``repr``-compared) across all three modes — the fast path and the
    segment cache are not allowed to perturb even the output order or
    the failure accounting.  Eager-navigation cells bypass the
    scanners entirely, so they run the default mode only.

    *expected* is either a :func:`canonical_result` tuple or an
    :class:`ExpectedError` — in the latter case every scan mode must
    raise a failure matching it.
    """
    scan_modes = (
        SCAN_MODE_AXIS if projection == "projected" else ("ondemand",)
    )
    reference_mode = None
    reference_bytes = None
    runs = 0

    def mismatch(kind: str, detail: str, scan_mode: str) -> Mismatch:
        return Mismatch(
            case=case_name,
            config=config_name,
            backend=backend_name,
            projection=projection,
            scan_mode=scan_mode,
            spill=memory_budget is not None,
            crash=fault_plan is not None,
            cost=cost,
            kind=kind,
            detail=detail,
        )

    for scan_mode in scan_modes:
        runs += 1
        try:
            result = runner.run(
                source,
                query_text,
                TOGGLE_CONFIGS[config_name],
                backend_name,
                projection,
                scan_mode=scan_mode,
                memory_budget=memory_budget,
                fault_plan=fault_plan,
                cost=cost,
            )
        except ReproError as error:
            if isinstance(expected, ExpectedError):
                if expected.matches(error):
                    continue
                return runs, mismatch(
                    "error",
                    f"expected {expected.type_name}, "
                    f"got {type(error).__name__}: {error}",
                    scan_mode,
                )
            return runs, mismatch(
                "error", f"{type(error).__name__}: {error}", scan_mode
            )
        if isinstance(expected, ExpectedError):
            return runs, mismatch(
                "missing-error",
                f"expected {expected.type_name} "
                f"({expected.message!r}), got {len(result.items)} items",
                scan_mode,
            )
        actual = canonical_result(result.items)
        if actual != expected:
            return runs, mismatch(
                "mismatch",
                (
                    f"expected {len(expected)} canonical items, "
                    f"got {len(actual)}; "
                    f"missing={list(set(expected) - set(actual))[:3]!r} "
                    f"unexpected={list(set(actual) - set(expected))[:3]!r}"
                ),
                scan_mode,
            )
        cell_bytes = (repr(result.items), repr(result.degradation))
        if reference_bytes is None:
            reference_mode, reference_bytes = scan_mode, cell_bytes
        elif cell_bytes != reference_bytes:
            diverged = (
                "items"
                if cell_bytes[0] != reference_bytes[0]
                else "degradation report"
            )
            return runs, mismatch(
                "scan-mode-divergence",
                (
                    f"{diverged} not byte-identical to the "
                    f"{reference_mode} run of the same cell"
                ),
                scan_mode,
            )
    return runs, None


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def shrink_case(case: GeneratedCase, still_fails) -> GeneratedCase:
    """Greedy deterministic minimization of a failing generated case.

    Tries, in order: dropping whole partitions, dropping document lines
    within each partition text, and dropping one record at a time from
    each document's ``results`` array (re-serialized; a candidate is
    kept only if ``still_fails`` still reports the failure, so edits
    that lose a load-bearing anomaly — e.g. a duplicate key — are
    rejected).
    """
    import json

    def try_candidate(partitions) -> GeneratedCase | None:
        partitions = [p for p in partitions if any(t.strip() for t in p)]
        if not partitions:
            return None
        candidate = case.with_partitions(partitions)
        try:
            return candidate if still_fails(candidate) else None
        except ReproError:
            # A shrink step that turns the failure into a hard error is
            # still a repro of *something*, but not of this failure.
            return None

    current = case
    changed = True
    while changed:
        changed = False
        # 1. Drop whole partitions.
        if len(current.partitions) > 1:
            for index in range(len(current.partitions)):
                candidate = try_candidate(
                    [
                        p
                        for i, p in enumerate(current.partitions)
                        if i != index
                    ]
                )
                if candidate is not None:
                    current, changed = candidate, True
                    break
        if changed:
            continue
        # 2. Drop document lines inside a partition text.
        for pi, partition in enumerate(current.partitions):
            lines = partition[0].split("\n")
            if len(lines) <= 1:
                continue
            for li in range(len(lines)):
                kept = [line for i, line in enumerate(lines) if i != li]
                partitions = [list(p) for p in current.partitions]
                partitions[pi] = ["\n".join(kept)]
                candidate = try_candidate(partitions)
                if candidate is not None:
                    current, changed = candidate, True
                    break
            if changed:
                break
        if changed:
            continue
        # 3. Drop one record from a document's results array.
        for pi, partition in enumerate(current.partitions):
            lines = partition[0].split("\n")
            for li, line in enumerate(lines):
                try:
                    docs = parse_many(line)
                except ReproError:
                    continue
                if len(docs) != 1:
                    continue
                reduced = _drop_one_record(docs[0])
                for doc in reduced:
                    new_lines = list(lines)
                    new_lines[li] = json.dumps(doc)
                    partitions = [list(p) for p in current.partitions]
                    partitions[pi] = ["\n".join(new_lines)]
                    candidate = try_candidate(partitions)
                    if candidate is not None:
                        current, changed = candidate, True
                        break
                if changed:
                    break
            if changed:
                break
    return current


def _drop_one_record(document):
    """Variants of *document* with one ``results`` record removed."""
    variants = []
    if not isinstance(document, dict):
        return variants
    members = (
        document["root"]
        if isinstance(document.get("root"), list)
        else [document]
    )
    for mi, member in enumerate(members):
        if not isinstance(member, dict):
            continue
        results = member.get("results")
        if not isinstance(results, list) or not results:
            continue
        for ri in range(len(results)):
            new_member = dict(member)
            new_member["results"] = [
                r for i, r in enumerate(results) if i != ri
            ]
            if isinstance(document.get("root"), list):
                new_root = list(document["root"])
                new_root[mi] = new_member
                variants.append({**document, "root": new_root})
            else:
                variants.append(new_member)
    return variants


# ---------------------------------------------------------------------------
# Top-level run
# ---------------------------------------------------------------------------

#: budget name -> (generated case count, paper dataset size knobs)
BUDGETS = {
    # start_year=2003 so Q0's "December 25 of 2003 or later" filter
    # selects real rows even from the tiny dataset.
    "small": (40, SensorDataConfig(stations=4, start_year=2003,
                                   year_span=2, measurements_per_array=8,
                                   target_file_bytes=4 * 1024)),
    "full": (200, SensorDataConfig(stations=6, start_year=2003,
                                   year_span=3, measurements_per_array=12,
                                   target_file_bytes=8 * 1024)),
}


def _paper_sources(seed: int, config: SensorDataConfig):
    """The benchmark dataset as a 2-partition in-memory collection."""
    rng = random.Random(seed)
    partitions = [
        [generate_file_text(rng, config, wrapped=True)] for _ in range(2)
    ]
    documents = [
        doc
        for partition in partitions
        for text in partition
        for doc in parse_many(text)
    ]
    return InMemorySource(collections={"/sensors": partitions}), documents


def run_diffcheck(
    seed: int = 0,
    budget: str = "full",
    max_workers: int = 2,
    shrink: bool = True,
    progress=None,
) -> DiffCheckReport:
    """Run the full differential matrix; return a report.

    The five paper queries get every (toggle × backend × projection)
    cell plus one forced-spill cell per backend (all-rules, projected,
    a :data:`SPILL_BUDGET_BYTES` budget) plus one crash-injected cell
    per backend (all-rules, projected, the first partition's worker
    killed on attempt 1 — recovery must still match the oracle
    bit-for-bit).  Every projected cell — including the spill and
    crash cells — additionally sweeps the scan-mode axis
    (:data:`SCAN_MODE_AXIS`) and byte-compares items and degradation
    reports across modes.  Generated pairs check every
    rewrite toggle on the (sequential, projected) cell, plus one
    rotating (backend, projection) cell under the all-rules config, and
    one rotating forced-spill cell, so the whole axis stays covered
    across the case population at a fraction of the cost.
    """
    from repro.bench.queries import ALL_QUERIES

    if budget not in BUDGETS:
        raise ValueError(
            f"unknown budget {budget!r}; expected one of {sorted(BUDGETS)}"
        )
    case_count, data_config = BUDGETS[budget]
    report = DiffCheckReport(seed=seed, budget=budget)
    runner = _MatrixRunner(max_workers=max_workers)
    try:
        _run_paper_queries(runner, report, seed, data_config, ALL_QUERIES,
                           progress)
        _run_generated_cases(runner, report, seed, case_count, shrink,
                             progress)
    finally:
        runner.close()
    return report


def _run_paper_queries(runner, report, seed, data_config, queries, progress):
    source, documents = _paper_sources(seed, data_config)
    for name, builder in queries.items():
        query_text = builder(collection="/sensors", wrapped=True)
        expected = canonical_result(oracle_result(name, documents))
        for cell in _cells(TOGGLE_CONFIGS, BACKEND_NAMES, PROJECTION_MODES):
            runs, mismatch = _check_cell(
                runner, report, source, name, query_text, expected, *cell
            )
            report.paper_cells += runs
            if mismatch is not None:
                report.mismatches.append(mismatch)
        # Forced-spill cells: the same query, all backends, a budget
        # small enough that the blocking operators degrade to disk; the
        # result must still match the oracle bit-for-bit.
        for backend_name in BACKEND_NAMES:
            runs, mismatch = _check_cell(
                runner, report, source, name, query_text, expected,
                "all", backend_name, "projected",
                memory_budget=SPILL_BUDGET_BYTES,
            )
            report.paper_cells += runs
            if mismatch is not None:
                report.mismatches.append(mismatch)
        # Crash-injected cells: the same query with the first
        # partition's worker killed on its first attempt.  Recovery
        # must reschedule the unit and produce the oracle result
        # bit-for-bit on every backend (a real ``os._exit`` under the
        # process backend, simulated crashes elsewhere).
        crash_plan = FaultPlan().kill_worker(0, attempt=1)
        for backend_name in BACKEND_NAMES:
            runs, mismatch = _check_cell(
                runner, report, source, name, query_text, expected,
                "all", backend_name, "projected",
                fault_plan=crash_plan,
            )
            report.paper_cells += runs
            if mismatch is not None:
                report.mismatches.append(mismatch)
        # Cost-off cells: the same query compiled without the
        # cost-based planning phase, on every backend, plus one spill
        # and one crash variant — cost planning is a physical-plan
        # decision only, so the oracle answer cannot move.
        cost_off_cells = [
            (backend_name, None, None) for backend_name in BACKEND_NAMES
        ]
        cost_off_cells.append(("sequential", SPILL_BUDGET_BYTES, None))
        cost_off_cells.append(("sequential", None, crash_plan))
        for backend_name, budget, plan in cost_off_cells:
            runs, mismatch = _check_cell(
                runner, report, source, name, query_text, expected,
                "all", backend_name, "projected",
                memory_budget=budget, fault_plan=plan, cost=False,
            )
            report.paper_cells += runs
            if mismatch is not None:
                report.mismatches.append(mismatch)
        if progress is not None:
            progress(f"paper query {name}: {report.paper_cells} cells")


def _run_generated_cases(runner, report, seed, case_count, shrink, progress):
    cases = generate_cases(seed, case_count)
    report.generated_cases = len(cases)
    rotation = [
        (backend, projection)
        for backend in BACKEND_NAMES
        for projection in PROJECTION_MODES
    ]
    for index, case in enumerate(cases):
        source = InMemorySource(
            collections={COLLECTION: [list(p) for p in case.partitions]}
        )
        try:
            expected = canonical_result(case.expected())
        except ReproError as error:
            # The oracle pins an *error* (e.g. a join keyed on a
            # multi-item sequence): every cell must fail the same way.
            expected = ExpectedError(type(error).__name__, str(error))
        cells = [
            (config_name, "sequential", "projected", None, True)
            for config_name in TOGGLE_CONFIGS
        ]
        cells.append(("all", *rotation[index % len(rotation)], None, True))
        # The rotating forced-spill cell (offset so the same case does
        # not always pair spill with the same backend/projection).
        cells.append(
            (
                "all",
                *rotation[(index + 3) % len(rotation)],
                SPILL_BUDGET_BYTES,
                True,
            )
        )
        # The rotating cost-off cell: the physical plan reverts to the
        # un-costed default; the answer (or pinned error) must not move.
        cells.append(
            ("all", *rotation[(index + 1) % len(rotation)], None, False)
        )
        for config_name, backend_name, projection, budget, cost in cells:
            runs, mismatch = _check_cell(
                runner, report, source, case.name, case.query_text,
                expected, config_name, backend_name, projection,
                memory_budget=budget, cost=cost,
            )
            report.generated_cells += runs
            if mismatch is not None:
                if (
                    shrink
                    and mismatch.kind == "mismatch"
                    and not isinstance(expected, ExpectedError)
                ):
                    mismatch = _shrink_mismatch(runner, case, mismatch)
                report.mismatches.append(mismatch)
        if progress is not None and (index + 1) % 25 == 0:
            progress(f"generated cases: {index + 1}/{len(cases)}")


def _shrink_mismatch(runner, case, mismatch: Mismatch) -> Mismatch:
    config = TOGGLE_CONFIGS[mismatch.config]

    def still_fails(candidate: GeneratedCase) -> bool:
        source = InMemorySource(
            collections={COLLECTION: [list(p) for p in candidate.partitions]}
        )
        try:
            got = runner.run(
                source,
                candidate.query_text,
                config,
                mismatch.backend,
                mismatch.projection,
                scan_mode=(
                    mismatch.scan_mode
                    if mismatch.scan_mode in SCAN_MODE_AXIS
                    else "ondemand"
                ),
                memory_budget=SPILL_BUDGET_BYTES if mismatch.spill else None,
            )
        except ReproError:
            return False
        return (
            canonical_result(got.items)
            != canonical_result(candidate.expected())
        )

    shrunk = shrink_case(case, still_fails)
    mismatch.repro_query = shrunk.query_text
    mismatch.repro_partitions = [list(p) for p in shrunk.partitions]
    return mismatch
