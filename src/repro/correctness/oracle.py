"""Independent plain-Python oracle for the paper's queries.

Promoted from ``bench/reference.py``: these compute Q0-Q2 directly over
materialized items with none of the query-engine machinery (no algebra,
no rewrite rules, no backends), defining ground truth for the
differential harness and the integration tests.

Unlike the original reference functions, the oracle mirrors the
engine's *edge* semantics on malformed or irregular data, so the
differential harness can feed both sides randomly generated documents:

- a missing object key navigates to the empty sequence, and a general
  comparison with ``()`` is false (XQuery 3.1 §3.7.2) — so records
  lacking a filtered key silently don't match,
- ``null`` is an item: ``null eq null`` is true, so null join keys
  match each other while *missing* join keys match nothing,
- group-by keys use value-based equality across int/float, and records
  with a missing grouping key form their own group (the engine's
  canonical-key machinery; see :func:`repro.jsonlib.items.canonical_key`),
- ``count($r("station"))`` counts the station *values* present in the
  group (a null station counts, a missing one doesn't).
"""

from __future__ import annotations

import datetime
import re

from repro.jsonlib.items import Item, canonical_item

#: Group key for records whose grouping key is the empty sequence.
MISSING = ("missing-key",)

_COMPACT_RE = re.compile(r"^(\d{4})(\d{2})(\d{2})T(\d{2}):(\d{2})(?::(\d{2}))?$")


def iter_measurements(documents: list[Item]):
    """All measurement objects of a parsed sensor dataset.

    Accepts both file shapes: wrapped (``{"root": [...]}`` per file) and
    unwrapped (``{metadata, results}`` documents).
    """
    for document in documents:
        if not isinstance(document, dict):
            continue
        if isinstance(document.get("root"), list):
            members = document["root"]
        else:
            members = [document]
        for member in members:
            if isinstance(member, dict) and isinstance(
                member.get("results"), list
            ):
                yield from member["results"]


def _parse_date(text: str) -> datetime.datetime:
    """Independent reimplementation of the engine's dateTime() parse:
    compact NOAA timestamps and ISO timestamps."""
    match = _COMPACT_RE.match(text)
    if match is not None:
        year, month, day, hour, minute = (int(g) for g in match.groups()[:5])
        return datetime.datetime(
            year, month, day, hour, minute, int(match.group(6) or 0)
        )
    return datetime.datetime.fromisoformat(text)


def _is_dec25_from_2003(date_value) -> bool:
    """Q0's filter; a missing (or non-string) date never matches,
    mirroring ``year-from-dateTime(dateTime(data(()))) ge 2003`` being
    a comparison against the empty sequence."""
    if not isinstance(date_value, str):
        return False
    moment = _parse_date(date_value)
    return moment.year >= 2003 and moment.month == 12 and moment.day == 25


def reference_q0(documents: list[Item]) -> list[Item]:
    """Q0: measurements taken on Dec 25 of 2003 or later."""
    return [
        m
        for m in iter_measurements(documents)
        if _is_dec25_from_2003(m.get("date", MISSING))
    ]


def reference_q0b(documents: list[Item]) -> list[str]:
    """Q0b: the dates of those measurements."""
    return [m["date"] for m in reference_q0(documents)]


def _group_key(value, present: bool):
    """Canonical grouping key: value-equal items share a group, records
    with a missing key share the MISSING group."""
    if not present:
        return MISSING
    return canonical_item(value)


def reference_q1_groups(documents: list[Item]) -> dict:
    """Q1/Q1b: per-date count of TMIN measurements' stations, keyed by
    canonical group key (MISSING for records without a date)."""
    counts: dict = {}
    for m in iter_measurements(documents):
        if m.get("dataType", MISSING) != "TMIN":
            continue
        key = _group_key(m.get("date"), "date" in m)
        counts.setdefault(key, 0)
        # count($r("station")) counts station *values*: null counts,
        # a missing key contributes nothing.
        if "station" in m:
            counts[key] += 1
    return counts


def reference_q1(documents: list[Item]) -> dict[str, int]:
    """Q1/Q1b for well-formed data: per-date count of TMIN measurements.

    Kept for the integration tests; assumes every TMIN record carries
    ``date`` and ``station`` keys (the generator's default output).
    """
    counts: dict[str, int] = {}
    for m in iter_measurements(documents):
        if m["dataType"] == "TMIN":
            counts[m["date"]] = counts.get(m["date"], 0) + 1
    return counts


def reference_q2(documents: list[Item]) -> float | None:
    """Q2: avg(TMAX - TMIN) over matching (station, date), div 10.

    Join keys follow the engine's equi-join semantics: a record missing
    ``station`` or ``date`` joins nothing (``() eq x`` is false), while
    null keys match null keys (``null eq null`` is true).  A joined pair
    where either side lacks a ``value`` key contributes nothing — the
    engine's subtraction over an empty operand yields the empty
    sequence, which ``avg`` ignores.
    """
    tmin: dict[tuple, list] = {}
    for m in iter_measurements(documents):
        if m.get("dataType", MISSING) != "TMIN":
            continue
        if "station" not in m or "date" not in m:
            continue
        key = (canonical_item(m["station"]), canonical_item(m["date"]))
        tmin.setdefault(key, []).append(m.get("value", MISSING))
    total = 0.0
    pairs = 0
    for m in iter_measurements(documents):
        if m.get("dataType", MISSING) != "TMAX":
            continue
        if "station" not in m or "date" not in m:
            continue
        key = (canonical_item(m["station"]), canonical_item(m["date"]))
        value = m.get("value", MISSING)
        for tmin_value in tmin.get(key, ()):
            if value is MISSING or tmin_value is MISSING:
                continue
            total += value - tmin_value
            pairs += 1
    if pairs == 0:
        return None
    return (total / pairs) / 10


def oracle_result(query_name: str, documents: list[Item]) -> list:
    """The engine-shaped result sequence the named paper query should
    produce over *documents* — what the differential harness compares
    against (order-insensitively for the grouped queries)."""
    if query_name == "Q0":
        return reference_q0(documents)
    if query_name == "Q0b":
        return reference_q0b(documents)
    if query_name in ("Q1", "Q1b"):
        return list(reference_q1_groups(documents).values())
    if query_name == "Q2":
        value = reference_q2(documents)
        return [] if value is None else [value]
    raise KeyError(f"unknown paper query {query_name!r}")
