"""Structural plan invariants, checked after every rewrite-rule fire.

A broken rewrite rule should fail at *compile time* with a message
naming the rule, not execute and silently return wrong answers.  The
validator walks a :class:`~repro.algebra.plan.LogicalPlan` bottom-up,
tracking the exact set of variables each operator's output tuples carry
(mirroring the physical semantics in :mod:`repro.hyracks.operators`),
and raises :class:`PlanInvariantError` on:

- a free variable in any expression that its operator's input scope does
  not provide (dangling reference after a bad inline/removal),
- a root that is not DISTRIBUTE-RESULT, or a DISTRIBUTE-RESULT below
  the root,
- a NESTED-TUPLE-SOURCE in the main operator tree, or any other leaf
  inside a nested plan,
- a SUBPLAN / GROUP-BY nested plan whose root is not an AGGREGATE
  (execution requires exactly one output tuple per group),
- duplicate variables within one AGGREGATE's specs or one GROUP-BY's
  keys,
- a DATASCAN projection path containing non-path-step entries (a
  malformed fold of navigation steps into the scan).

Scoping follows execution, not the operators' optimistic
``produced_variables``: AGGREGATE emits a *fresh* tuple holding only
its spec variables, GROUP-BY emits key variables plus the nested root
aggregate's spec variables, and SUBPLAN merges the input tuple with the
nested root aggregate's bindings.  Variable *rebinding* across scopes is
normal (Figure 9 re-binds grouped variables through ``ASSIGN treat``),
so the validator checks reachability, not global uniqueness.
"""

from __future__ import annotations

from repro.errors import RewriteError
from repro.algebra.operators import (
    Aggregate,
    Assign,
    DataScan,
    DistributeResult,
    EmptyTupleSource,
    GroupBy,
    Join,
    NestedTupleSource,
    Operator,
    Select,
    Sort,
    Subplan,
    Unnest,
)
from repro.algebra.plan import LogicalPlan
from repro.jsonlib.path import KeysOrMembers, ValueByIndex, ValueByKey

_PATH_STEP_TYPES = (ValueByKey, ValueByIndex, KeysOrMembers)


class PlanInvariantError(RewriteError):
    """A structural invariant of the logical plan does not hold."""


def validate_plan(plan: LogicalPlan) -> None:
    """Check all structural invariants of *plan*; raise on violation."""
    root = plan.root
    if not isinstance(root, DistributeResult):
        raise PlanInvariantError(
            f"plan root must be DISTRIBUTE-RESULT, found {root.name}"
        )
    scope = _scope_of(root.input_op, None)
    _check_expressions(root, scope)


def _check_expressions(op: Operator, scope: frozenset) -> None:
    """Every free variable of *op*'s expressions must be in *scope*."""
    for expr in op.used_expressions():
        dangling = expr.free_variables() - scope
        if dangling:
            names = ", ".join(sorted(f"${name}" for name in dangling))
            raise PlanInvariantError(
                f"{op.signature()} references {names}, not produced by its "
                f"input (scope: {sorted(scope) or '{}'})"
            )


def _scope_of(op: Operator, nested_scope: frozenset | None) -> frozenset:
    """Output-tuple variable set of *op*, validating its subtree.

    ``nested_scope`` is None in the main tree; inside a nested plan it
    is the scope a NESTED-TUPLE-SOURCE leaf re-emits.
    """
    if isinstance(op, DistributeResult):
        raise PlanInvariantError("DISTRIBUTE-RESULT below the plan root")
    if isinstance(op, EmptyTupleSource):
        return frozenset()
    if isinstance(op, NestedTupleSource):
        if nested_scope is None:
            raise PlanInvariantError(
                "NESTED-TUPLE-SOURCE outside a nested plan"
            )
        return nested_scope
    if isinstance(op, DataScan):
        for step in op.project_path:
            if not isinstance(step, _PATH_STEP_TYPES):
                raise PlanInvariantError(
                    f"{op.signature()} projection path holds a non-step "
                    f"entry {step!r}"
                )
        return frozenset((op.variable,))
    if isinstance(op, (Assign, Unnest)):
        scope = _scope_of(op.input_op, nested_scope)
        _check_expressions(op, scope)
        return scope | {op.variable}
    if isinstance(op, (Select, Sort)):
        scope = _scope_of(op.input_op, nested_scope)
        _check_expressions(op, scope)
        return scope
    if isinstance(op, Aggregate):
        scope = _scope_of(op.input_op, nested_scope)
        _check_expressions(op, scope)
        _check_distinct(
            op, (spec.variable for spec in op.specs), "aggregate spec"
        )
        # AGGREGATE emits one fresh tuple holding only its spec variables.
        return frozenset(spec.variable for spec in op.specs)
    if isinstance(op, Subplan):
        scope = _scope_of(op.input_op, nested_scope)
        produced = _validate_nested_plan(op, op.nested_root, scope)
        return scope | produced
    if isinstance(op, GroupBy):
        scope = _scope_of(op.input_op, nested_scope)
        _check_expressions(op, scope)
        _check_distinct(op, (var for var, _ in op.keys), "group-by key")
        produced = _validate_nested_plan(op, op.nested_root, scope)
        return frozenset(var for var, _ in op.keys) | produced
    if isinstance(op, Join):
        left = _scope_of(op.left, nested_scope)
        right = _scope_of(op.right, nested_scope)
        _check_expressions(op, left | right)
        return left | right
    raise PlanInvariantError(f"unknown operator {op.name}")


def _check_distinct(op: Operator, names, what: str) -> None:
    seen: set[str] = set()
    for name in names:
        if name in seen:
            raise PlanInvariantError(
                f"{op.signature()} binds {what} ${name} twice"
            )
        seen.add(name)


def _validate_nested_plan(
    owner: Operator, nested_root: Operator, outer_scope: frozenset
) -> frozenset:
    """Validate a SUBPLAN/GROUP-BY nested plan; return its output scope.

    Execution (:func:`repro.hyracks.operators.execute_nested_plan`)
    requires the nested root to be an AGGREGATE — it contributes exactly
    one tuple of its spec variables per outer tuple / group.
    """
    if not isinstance(nested_root, Aggregate):
        raise PlanInvariantError(
            f"{owner.name} nested plan root must be AGGREGATE, "
            f"found {nested_root.name}"
        )
    node: Operator = nested_root
    while node.inputs:
        if len(node.inputs) != 1:
            raise PlanInvariantError(
                f"{owner.name} nested plan contains non-unary "
                f"operator {node.name}"
            )
        node = node.inputs[0]
    if not isinstance(node, NestedTupleSource):
        raise PlanInvariantError(
            f"{owner.name} nested plan leaf must be NESTED-TUPLE-SOURCE, "
            f"found {node.name}"
        )
    return _scope_of(nested_root, outer_scope)
