"""Aggregate accumulators with partial/combine decomposition.

Each accumulator folds a tuple stream for one
:class:`~repro.algebra.operators.AggregateSpec`.  The partial/combine
split implements Algebricks' **two-step aggregation** (Section 4.3):
every partition folds its local tuples into a partial state, and a
central step combines partials into the final value — so ``count``,
``sum``, ``avg``, ``min`` and ``max`` parallelize without shipping raw
tuples.

``sequence`` is the materializing aggregate (it collects every item);
its accumulator charges the memory tracker, which is how the naive
group-by plans show their memory cost.
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.algebra.context import EvaluationContext
from repro.algebra.operators import AggregateSpec
from repro.hyracks.tuples import Tuple
from repro.jsonlib.items import sizeof_item


class Accumulator:
    """Base class: fold tuples, expose a partial, finish to a sequence."""

    __slots__ = ("spec",)

    def __init__(self, spec: AggregateSpec):
        self.spec = spec

    def add(self, tup: Tuple, ctx: EvaluationContext) -> None:
        """Fold one input tuple."""
        raise NotImplementedError

    def partial(self) -> object:
        """Partition-local partial state (cheap to ship)."""
        raise NotImplementedError

    def absorb(self, partial: object) -> None:
        """Combine another accumulator's partial into this one."""
        raise NotImplementedError

    def finish(self, ctx: EvaluationContext) -> list:
        """The aggregate's final value as a sequence."""
        raise NotImplementedError


class SequenceAccumulator(Accumulator):
    """``sequence(...)`` — concatenates every argument item.

    The materializing aggregate.  Without a spill manager on the context
    it charges the tracker (raising on budget overflow, the behaviour
    the naive plans rely on); with one, the items live in a
    :class:`~repro.hyracks.spill.SpilledSequence` that overflows to run
    files instead.
    """

    __slots__ = ("items", "charged_bytes", "_store")

    def __init__(self, spec: AggregateSpec):
        super().__init__(spec)
        self.items: list = []
        self.charged_bytes = 0
        self._store = None

    def add(self, tup, ctx):
        values = self.spec.argument.evaluate(tup, ctx)
        if (
            self._store is None
            and ctx.spill is not None
            and ctx.memory is not None
            and not self.items
        ):
            from repro.hyracks.spill import SpilledSequence

            self._store = SpilledSequence(ctx, label="sequence")
        if self._store is not None:
            for value in values:
                self._store.append(value, sizeof_item(value))
            return
        self.items.extend(values)
        if ctx.memory is not None:
            n_bytes = sum(sizeof_item(v) for v in values)
            self.charged_bytes += n_bytes
            ctx.charge(n_bytes)

    def partial(self):
        if self._store is not None:
            return list(self._store)
        return self.items

    def absorb(self, partial):
        self.items.extend(partial)

    def release_charges(self, ctx) -> None:
        """Drop this accumulator's memory charge (its partial was spilled)."""
        if self._store is not None:
            self._store.close()
            self._store = None
            return
        if self.charged_bytes:
            ctx.release(self.charged_bytes)
            self.charged_bytes = 0

    def finish(self, ctx):
        if self._store is not None:
            self.items = list(self._store)
            self._store.close()
            self._store = None
            return self.items
        if self.charged_bytes:
            ctx.release(self.charged_bytes)
            self.charged_bytes = 0
        return self.items


class CountAccumulator(Accumulator):
    """``count(...)`` — number of argument items across all tuples."""

    __slots__ = ("n",)

    def __init__(self, spec: AggregateSpec):
        super().__init__(spec)
        self.n = 0

    def add(self, tup, ctx):
        self.n += len(self.spec.argument.evaluate(tup, ctx))

    def partial(self):
        return self.n

    def absorb(self, partial):
        self.n += partial

    def finish(self, ctx):
        return [self.n]


class SumAccumulator(Accumulator):
    """``sum(...)`` — numeric sum (0 when no items were seen)."""

    __slots__ = ("total",)

    def __init__(self, spec: AggregateSpec):
        super().__init__(spec)
        self.total: int | float = 0

    def add(self, tup, ctx):
        for value in self.spec.argument.evaluate(tup, ctx):
            self.total += value

    def partial(self):
        return self.total

    def absorb(self, partial):
        self.total += partial

    def finish(self, ctx):
        return [self.total]


class AvgAccumulator(Accumulator):
    """``avg(...)`` — decomposes into a (sum, count) partial."""

    __slots__ = ("total", "n")

    def __init__(self, spec: AggregateSpec):
        super().__init__(spec)
        self.total: int | float = 0
        self.n = 0

    def add(self, tup, ctx):
        for value in self.spec.argument.evaluate(tup, ctx):
            self.total += value
            self.n += 1

    def partial(self):
        return (self.total, self.n)

    def absorb(self, partial):
        total, n = partial
        self.total += total
        self.n += n

    def finish(self, ctx):
        if self.n == 0:
            return []
        return [self.total / self.n]


class MinMaxAccumulator(Accumulator):
    """``min(...)`` / ``max(...)``."""

    __slots__ = ("best", "is_min")

    def __init__(self, spec: AggregateSpec):
        super().__init__(spec)
        self.best = None
        self.is_min = spec.function == "min"

    def add(self, tup, ctx):
        for value in self.spec.argument.evaluate(tup, ctx):
            if self.best is None:
                self.best = value
            elif self.is_min:
                self.best = min(self.best, value)
            else:
                self.best = max(self.best, value)

    def partial(self):
        return self.best

    def absorb(self, partial):
        if partial is None:
            return
        if self.best is None:
            self.best = partial
        elif self.is_min:
            self.best = min(self.best, partial)
        else:
            self.best = max(self.best, partial)

    def finish(self, ctx):
        return [] if self.best is None else [self.best]


_ACCUMULATORS = {
    "sequence": SequenceAccumulator,
    "count": CountAccumulator,
    "sum": SumAccumulator,
    "avg": AvgAccumulator,
    "min": MinMaxAccumulator,
    "max": MinMaxAccumulator,
}


def make_accumulator(spec: AggregateSpec) -> Accumulator:
    """Build the accumulator for an aggregate spec."""
    try:
        return _ACCUMULATORS[spec.function](spec)
    except KeyError:
        raise PlanError(f"no accumulator for {spec.function!r}") from None


def make_accumulators(specs) -> list[Accumulator]:
    """Accumulators for a spec list, in order."""
    return [make_accumulator(spec) for spec in specs]
