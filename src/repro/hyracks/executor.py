"""Partitioned query execution.

The executor takes a (rewritten) logical plan and runs it over a
partitioned collection, mirroring how VXQuery's Hyracks jobs run:

- **pipelined plans** (selections like Q0/Q0b) run one plan instance per
  partition; results concatenate;
- **grouped aggregations** (Q1/Q1b) run partition-local GROUP-BYs and a
  coordinator combine when two-step aggregation is enabled; with it
  disabled, raw tuples ship to the coordinator (the ablation of
  Section 4.3's last rule);
- **global aggregates** (Q2's ``avg``) use the same partial/combine
  decomposition;
- **equi-joins** hash-exchange both sides into per-partition buckets and
  join each bucket locally (Hyracks' hash-partitioned join);
- plans with no DATASCAN — the naive, pre-pipelining shape — cannot be
  partitioned at all and run as a single global instance, exactly the
  behaviour that makes the "before rules" bars of Figures 13-16 tall.

Partition work is dispatched through a pluggable
:mod:`~repro.hyracks.backends` layer: ``sequential`` (the default) runs
partitions one after another in-process, ``thread`` overlaps them on a
thread pool, and ``process`` runs them on a ``ProcessPoolExecutor`` —
real multi-core parallelism for the pure-Python parser.  Every
partition's work is executed for real and timed; the result carries
per-partition seconds so a :class:`~repro.hyracks.cluster.ClusterSpec`
can compose a simulated cluster makespan, plus the *measured* parallel
wall time of the partition phases under the chosen backend.

Partition work additionally runs under a
:class:`~repro.resilience.policies.ResilienceConfig`: ``fail_fast`` (the
default) wraps any failure in a
:class:`~repro.errors.PartitionExecutionError` naming the collection,
partition, and file; ``retry`` re-executes the partition under a
:class:`~repro.resilience.retry.RetryPolicy`, charging backoff to a
simulated clock (``QueryResult.injected_seconds``) so the cluster
makespan accounts for retry time; ``skip_partition`` drops the failing
partition and records it in the result's
:class:`~repro.resilience.report.DegradationReport`.  Per-partition
stats and degradation entries are merged on the coordinator in
partition order, so all backends produce identical results and reports
under a fixed fault seed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.algebra.context import EvaluationContext
from repro.algebra.operators import (
    Aggregate,
    Assign,
    DataScan,
    DistributeResult,
    GroupBy,
    Join,
    NestedTupleSource,
    Operator,
    Select,
    Subplan,
    Unnest,
)
from repro.algebra.plan import LogicalPlan
from repro.hyracks.aggregates import make_accumulators
from repro.hyracks.backends import (
    BroadcastScanWork,
    ExchangeWork,
    FoldPartialsWork,
    GroupTableWork,
    JoinBucketWork,
    PartitionOutcome,
    PipelinedWork,
    TupleStreamWork,
    WorkUnit,
    resolve_backend,
)
from repro.hyracks.cluster import ClusterSpec
from repro.hyracks.memory import MemoryTracker
from repro.hyracks.operators import run_chain, run_plan, split_join_condition
from repro.hyracks.tuples import Tuple, sizeof_tuple
from repro.jsonlib.items import Item
from repro.observability.profile import (
    ProfileCollector,
    build_query_profile,
    resolve_profile_config,
)
from repro.resilience.policies import ResilienceConfig
from repro.resilience.report import DegradationReport

_CHAIN_OPS = (Assign, Select, Unnest, Subplan)


@dataclass
class ExecutionStats:
    """Counters accumulated while a query runs."""

    items_scanned: int = 0
    scanned_item_bytes: int = 0
    exchange_tuples: int = 0
    exchange_bytes: int = 0
    #: spill-to-disk counters (bounded-memory execution)
    spill_events: int = 0
    spill_run_files: int = 0
    spill_bytes: int = 0
    spill_recursion_depth: int = 0
    #: crash-recovery counters (worker loss, ladder, speculation).
    #: ``worker_crashes`` and ``ladder_steps`` are deterministic under a
    #: seeded kill schedule; pool rebuilds and the speculative counters
    #: are timing-dependent and deliberately kept out of the
    #: degradation report.
    worker_crashes: int = 0
    pool_rebuilds: int = 0
    ladder_steps: int = 0
    speculative_launched: int = 0
    speculative_wins: int = 0
    speculative_losses: int = 0

    def merge(self, other: "ExecutionStats") -> None:
        """Fold another stats object into this one (coordinator merge)."""
        self.items_scanned += other.items_scanned
        self.scanned_item_bytes += other.scanned_item_bytes
        self.exchange_tuples += other.exchange_tuples
        self.exchange_bytes += other.exchange_bytes
        self.spill_events += other.spill_events
        self.spill_run_files += other.spill_run_files
        self.spill_bytes += other.spill_bytes
        if other.spill_recursion_depth > self.spill_recursion_depth:
            self.spill_recursion_depth = other.spill_recursion_depth
        self.worker_crashes += other.worker_crashes
        self.pool_rebuilds += other.pool_rebuilds
        self.ladder_steps += other.ladder_steps
        self.speculative_launched += other.speculative_launched
        self.speculative_wins += other.speculative_wins
        self.speculative_losses += other.speculative_losses


@dataclass
class QueryResult:
    """Everything a query execution produced and measured."""

    items: list
    partition_seconds: list[float] = field(default_factory=list)
    global_seconds: float = 0.0
    wall_seconds: float = 0.0
    peak_memory_bytes: int = 0
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    strategy: str = "global"
    injected_seconds: list[float] = field(default_factory=list)
    degradation: DegradationReport = field(default_factory=DegradationReport)
    backend: str = "sequential"
    parallel_wall_seconds: float = 0.0
    #: merged :class:`~repro.observability.profile.QueryProfile`
    #: (None unless the run was profiled)
    profile: object = None
    #: seconds left on the query deadline when execution finished
    #: (None when no deadline was set)
    deadline_slack_seconds: float | None = None

    @property
    def is_partial(self) -> bool:
        """True when degradation dropped data from this result."""
        return self.degradation.is_partial

    @property
    def warnings(self) -> list[str]:
        """Human-readable degradation warnings (empty for a clean run)."""
        return self.degradation.warnings

    def simulated_seconds(self, cluster: ClusterSpec, smooth: bool = True) -> float:
        """Cluster makespan for this execution under *cluster*.

        With ``smooth`` (the default), per-partition times are replaced
        by their mean before placement — **sequential backend only**:
        partitions carry symmetric data shares, so the variance measured
        by running them one after another in one process is
        scheduler/GC jitter, not real skew.  Under the ``thread`` and
        ``process`` backends the measured per-partition times include
        *real* contention (GIL, cores, memory bandwidth), which is
        exactly what a cluster placement should see, so smoothing is
        never applied there and ``smooth`` is ignored.  Pass
        ``smooth=False`` to place the raw sequential measurements too.

        Injected seconds (retry backoff, straggler delays) are real
        per-partition skew, never jitter, so they are charged *after*
        smoothing.
        """
        seconds = self.partition_seconds
        if smooth and self.backend == "sequential" and seconds:
            mean = sum(seconds) / len(seconds)
            seconds = [mean] * len(seconds)
        return cluster.makespan(
            seconds,
            exchange_bytes=self.stats.exchange_bytes,
            global_seconds=self.global_seconds,
            injected_seconds=self.injected_seconds or None,
        )


class PartitionedExecutor:
    """Runs logical plans over a partitioned data source.

    Parameters
    ----------
    source:
        A :class:`~repro.algebra.context.DataSource`.
    functions:
        Scalar-function library (defaults to the builtins).
    two_step_aggregation:
        Enable partition-local/global aggregation (Section 4.3); when
        off, grouped and global aggregations ship raw tuples to the
        coordinator.
    memory_budget_bytes:
        Optional per-instance memory budget.
    resilience:
        Per-partition error handling
        (:class:`~repro.resilience.policies.ResilienceConfig`); the
        default is ``fail_fast``, today's behaviour.
    backend:
        Execution backend for partition work: ``"sequential"`` (default),
        ``"thread"``, ``"process"``, or an
        :class:`~repro.hyracks.backends.ExecutionBackend` instance.
        ``None`` consults the ``REPRO_BACKEND`` environment variable.
    max_workers:
        Worker cap for the named pooled backends (default: CPU count).
    spill:
        With a memory budget set, let blocking operators degrade to
        disk when the budget is hit (the default) instead of raising
        :class:`~repro.errors.MemoryBudgetExceededError` (``False``).
    spill_dir:
        Root directory for spill run files (default: ``REPRO_SPILL_DIR``
        or the system temp dir), or a
        :class:`~repro.hyracks.spill.SpillConfig` for full control.
    deadline_seconds:
        Per-query deadline; a query running past it raises a
        :class:`~repro.errors.QueryTimeoutError`.  ``None`` consults the
        ``REPRO_DEADLINE`` environment variable.
    """

    def __init__(
        self,
        source,
        functions=None,
        two_step_aggregation: bool = True,
        memory_budget_bytes: int | None = None,
        resilience: ResilienceConfig | None = None,
        backend=None,
        max_workers: int | None = None,
        spill: bool = True,
        spill_dir: str | None = None,
        deadline_seconds: float | None = None,
    ):
        from repro.hyracks.limits import resolve_deadline_seconds
        from repro.hyracks.spill import resolve_spill_config

        self._source = source
        self._functions = functions
        self._two_step = two_step_aggregation
        self._memory_budget = memory_budget_bytes
        self._resilience = resilience if resilience is not None else ResilienceConfig()
        self._backend = resolve_backend(backend, max_workers=max_workers)
        # Spilling only ever triggers on a declined memory charge, so a
        # spill config without a budget would be inert — skip it.
        self._spill_config = (
            resolve_spill_config(spill_dir)
            if spill and memory_budget_bytes is not None
            else None
        )
        self._deadline_seconds = resolve_deadline_seconds(deadline_seconds)
        self._parallel_wall = 0.0
        self._profile_config = None
        self._profile = None  # coordinator-side ProfileCollector while running
        self._limits = None  # ExecutionLimits for the in-flight query
        self._open_spills = []  # coordinator-side SpillManagers to close
        self._query_spill = None  # per-query scoped SpillConfig while running
        self._closed = False

    @property
    def backend(self):
        """The resolved :class:`~repro.hyracks.backends.ExecutionBackend`."""
        return self._backend

    def close(self) -> None:
        """Release backend worker pools (threads/processes).

        Idempotent; once closed, :meth:`run` raises
        :class:`~repro.errors.ProcessorClosedError` instead of silently
        re-creating pools.
        """
        if self._closed:
            return
        self._closed = True
        self._backend.close()

    # -- public ---------------------------------------------------------------

    def run(self, plan: LogicalPlan, profile=None, cancellation=None) -> QueryResult:
        """Execute *plan* and return items plus measurements.

        *profile* enables operator-level profiling: ``True`` (wall
        clock), a clock name (``"wall"`` | ``"counter"`` | ``"none"``),
        or a :class:`~repro.observability.profile.ProfileConfig`; the
        default ``None`` consults the ``REPRO_PROFILE`` environment
        variable.  When enabled, ``result.profile`` carries the merged
        :class:`~repro.observability.profile.QueryProfile`.

        *cancellation* is an optional
        :class:`~repro.hyracks.limits.CancellationToken`; triggering it
        makes the query raise
        :class:`~repro.errors.QueryCancelledError` at the next frame
        boundary, unwinding with every spill file released.
        """
        from repro.errors import (
            ProcessorClosedError,
            QueryCancelledError,
            QueryTimeoutError,
        )
        from repro.hyracks.limits import ExecutionLimits, QueryDeadline

        if self._closed:
            raise ProcessorClosedError("executor")
        started = time.perf_counter()
        stats = ExecutionStats()
        report = DegradationReport()
        self._parallel_wall = 0.0
        # Pin this query's spill scope: every attempt directory (on the
        # coordinator and inside workers) nests under one per-query
        # root, so concurrent queries can never collide on spill paths.
        self._query_spill = (
            self._spill_config.scoped()
            if self._spill_config is not None
            else None
        )
        self._profile_config = resolve_profile_config(profile)
        self._profile = (
            ProfileCollector(plan, self._profile_config)
            if self._profile_config is not None
            else None
        )
        deadline = (
            QueryDeadline.start(self._deadline_seconds)
            if self._deadline_seconds is not None
            else None
        )
        self._limits = (
            ExecutionLimits(deadline, cancellation)
            if deadline is not None or cancellation is not None
            else None
        )
        self._open_spills = []
        attach = getattr(self._source, "attach_degradation", None)
        if attach is not None:
            attach(report)
        try:
            result = self._dispatch(plan, stats, report)
        except (QueryTimeoutError, QueryCancelledError) as error:
            # Coordinator-side limit hit (worker-side hits arrive with
            # error.degradation already attached by _map).
            if getattr(error, "degradation", None) is None:
                report.record_cancellation(-1, error)
                error.degradation = report
            raise
        finally:
            # Guaranteed cleanup: every coordinator-side spill manager
            # closes (removing its run files) no matter how we unwound.
            # Each manager is isolated — a close that itself fails (a
            # cancelled query racing a spill-write error can leave a
            # manager whose run files are already gone) must not skip
            # the remaining managers or the scope-dir removal below.
            for manager in self._open_spills:
                try:
                    manager.fold_stats(stats)
                    manager.close()
                except Exception:
                    pass
            self._open_spills = []
            # The per-query scope directory is ours alone (the scope is
            # query-unique), so removing the whole tree cannot touch a
            # concurrent query's run files.
            query_spill = self._query_spill
            self._query_spill = None
            if query_spill is not None:
                scope_dir = query_spill.scope_directory()
                if scope_dir is not None:
                    import shutil

                    shutil.rmtree(scope_dir, ignore_errors=True)
            limits = self._limits
            self._limits = None
            if attach is not None:
                attach(None)
        result.degradation = report
        if limits is not None:
            result.deadline_slack_seconds = limits.remaining_seconds()
        result.wall_seconds = time.perf_counter() - started
        result.backend = self._backend.name
        result.parallel_wall_seconds = self._parallel_wall
        if self._profile is not None:
            result.profile = build_query_profile(
                plan,
                self._profile,
                result.strategy,
                len(result.partition_seconds),
            )
            self._profile = None
            self._profile_config = None
        return result

    def _dispatch(
        self, plan: LogicalPlan, stats: ExecutionStats, report: DegradationReport
    ) -> QueryResult:
        scans = plan.operators_of(DataScan)
        partition_counts = {
            self._source.partition_count(scan.collection) for scan in scans
        }
        if not scans:
            return self._run_global(plan, stats)
        if len(partition_counts) > 1:
            # Collections partitioned differently cannot share one
            # partition-aligned job; run a single global instance.
            return self._run_global(plan, stats)
        (partitions,) = partition_counts
        if partitions <= 0:
            raise PlanError(
                f"collection {scans[0].collection!r} has no partitions"
            )
        return self._run_partitioned(plan, partitions, stats, report)

    # -- contexts ---------------------------------------------------------------

    def _context(
        self, partition: int | None, memory: MemoryTracker, stats: ExecutionStats
    ) -> EvaluationContext:
        spill = None
        spill_config = self._query_spill or self._spill_config
        if spill_config is not None:
            from repro.hyracks.spill import SpillManager

            fault_hook = None
            check = getattr(self._source, "check_spill_fault", None)
            if check is not None:
                fault_hook = lambda: check(partition)  # noqa: E731
            spill = SpillManager(
                spill_config, partition=partition, fault_hook=fault_hook
            )
            # run() closes every registered manager in its finally block,
            # so coordinator-side run files never outlive the query.
            self._open_spills.append(spill)
        return EvaluationContext(
            source=self._source,
            functions=self._functions,
            memory=memory,
            partition=partition,
            stats=stats,
            profile=self._profile,
            spill=spill,
            limits=self._limits,
        )

    def _tracker(self) -> MemoryTracker:
        return MemoryTracker(self._memory_budget, context="query execution")

    # -- backend dispatch --------------------------------------------------------

    def _map(
        self,
        plan: LogicalPlan,
        tasks: list[tuple[int, object]],
        stats: ExecutionStats,
        report: DegradationReport,
        charge_delay: bool = True,
    ) -> list[PartitionOutcome]:
        """Run (partition, work) *tasks* on the backend; merge outcomes.

        Outcomes come back in submission (partition-id) order regardless
        of completion order, so the merged stats, degradation report,
        and any ``fail_fast`` error are deterministic under every
        backend.
        """
        units = [
            WorkUnit(
                plan=plan,
                partition=partition,
                work=work,
                source=self._source,
                functions=self._functions,
                memory_budget=self._memory_budget,
                resilience=self._resilience,
                charge_delay=charge_delay,
                profile=self._profile_config,
                spill=self._query_spill or self._spill_config,
                limits=self._limits,
            )
            for partition, work in tasks
        ]
        started = time.perf_counter()
        outcomes: list[PartitionOutcome] = []
        try:
            for outcome in self._backend.run_units(units):
                if outcome.error is not None:
                    # A query-global limit fired in a worker.  Fold what
                    # that partition measured, attach the merged report,
                    # and unwind — run()'s finally releases every spill.
                    stats.merge(outcome.stats)
                    report.absorb(outcome.report)
                    outcome.error.degradation = report
                    raise outcome.error
                outcomes.append(outcome)
        finally:
            self._parallel_wall += time.perf_counter() - started
            # Fold whatever the crash-recovery layer logged (worker
            # losses, ladder steps, speculation) into the query's stats
            # and degradation report — on success and on unwind alike.
            drain = getattr(self._backend, "drain_recovery_events", None)
            if drain is not None:
                for event in drain():
                    _fold_recovery_event(event, stats, report)
            # Work units attach their own per-partition reports to the
            # (thread-local) source slot; restore the query-level report
            # for any coordinator-side scanning that follows.
            attach = getattr(self._source, "attach_degradation", None)
            if attach is not None:
                attach(report)
        for outcome in outcomes:
            stats.merge(outcome.stats)
            report.absorb(outcome.report)
            if self._profile is not None:
                self._profile.absorb(outcome.profile)
        return outcomes

    def _record_frames(self, op: Operator, tuples=None, n_bytes: int = 0) -> None:
        """Charge ``frames_emitted`` for tuples shipped at an exchange.

        Raw tuple streams are packed through a real
        :class:`~repro.hyracks.frames.FrameWriter`; partial/byte-counted
        exchanges charge whole frames over *n_bytes*.  Only runs while
        profiling, so the unprofiled path never packs frames twice.
        """
        if self._profile is None:
            return
        from repro.hyracks.frames import DEFAULT_FRAME_BYTES, FrameWriter

        frames = 0
        if tuples is not None:
            writer = FrameWriter(allow_big_objects=True)
            for tup in tuples:
                writer.write(tup)
            writer.flush()
            frames = writer.frames_emitted
        if n_bytes > 0:
            frames += -(-n_bytes // DEFAULT_FRAME_BYTES)  # ceil division
        if frames:
            self._profile.add(op, "frames_emitted", frames)

    @staticmethod
    def _collect_timing(
        outcomes: list[PartitionOutcome],
    ) -> tuple[list[float], list[float], int]:
        seconds = [o.measured_seconds for o in outcomes]
        injected = [o.injected_seconds for o in outcomes]
        peak = max((o.peak_memory_bytes for o in outcomes), default=0)
        return seconds, injected, peak

    # -- strategies ---------------------------------------------------------------

    def _run_global(self, plan: LogicalPlan, stats: ExecutionStats) -> QueryResult:
        """Single-instance execution (naive plans, unsupported shapes).

        A global instance has no partitions to retry or skip, so the
        resilience policies do not apply here.
        """
        memory = self._tracker()
        ctx = self._context(None, memory, stats)
        started = time.perf_counter()
        items = run_plan(plan, ctx)
        elapsed = time.perf_counter() - started
        return QueryResult(
            items,
            partition_seconds=[elapsed],
            peak_memory_bytes=memory.peak,
            stats=stats,
            strategy="global",
        )

    def _run_partitioned(
        self,
        plan: LogicalPlan,
        partitions: int,
        stats: ExecutionStats,
        report: DegradationReport,
    ) -> QueryResult:
        global_ops, boundary = _split(plan)
        if isinstance(boundary, GroupBy):
            if _find_join(boundary.input_op) is None and _is_chain_to_scan(
                boundary.input_op
            ):
                return self._run_grouped(
                    plan, global_ops, boundary, partitions, stats, report
                )
            return self._run_global(plan, stats)
        if isinstance(boundary, Aggregate):
            join_parts = _find_join(boundary.input_op)
            if join_parts is not None:
                mid_ops, join = join_parts
                if _is_chain_to_scan(join.left) and _is_chain_to_scan(join.right):
                    return self._run_join(
                        plan,
                        global_ops,
                        boundary,
                        mid_ops,
                        join,
                        partitions,
                        stats,
                        report,
                    )
                return self._run_global(plan, stats)
            if _is_chain_to_scan(boundary.input_op):
                return self._run_aggregated(
                    plan, global_ops, boundary, partitions, stats, report
                )
            return self._run_global(plan, stats)
        if isinstance(boundary, Join):
            if _is_chain_to_scan(boundary.left) and _is_chain_to_scan(
                boundary.right
            ):
                return self._run_join(
                    plan, global_ops, None, [], boundary, partitions, stats, report
                )
            return self._run_global(plan, stats)
        if isinstance(boundary, DataScan) or _is_chain_to_scan(boundary):
            return self._run_pipelined(plan, partitions, stats, report)
        return self._run_global(plan, stats)

    def _run_pipelined(
        self,
        plan: LogicalPlan,
        partitions: int,
        stats: ExecutionStats,
        report: DegradationReport,
    ) -> QueryResult:
        """Fully pipelined plan: one independent instance per partition."""
        work = PipelinedWork(plan)
        outcomes = self._map(
            plan, [(p, work) for p in range(partitions)], stats, report
        )
        partition_seconds, injected_seconds, peak = self._collect_timing(outcomes)
        items: list[Item] = []
        for outcome in outcomes:
            if not outcome.skipped:
                items.extend(outcome.value)
        return QueryResult(
            items,
            partition_seconds=partition_seconds,
            injected_seconds=injected_seconds,
            peak_memory_bytes=peak,
            stats=stats,
            strategy="pipelined",
        )

    def _run_grouped(
        self,
        plan: LogicalPlan,
        global_ops: list[Operator],
        group_by: GroupBy,
        partitions: int,
        stats: ExecutionStats,
        report: DegradationReport,
    ) -> QueryResult:
        """Partition-local GROUP-BY plus coordinator combine."""
        nested = group_by.nested_root
        incremental = isinstance(nested, Aggregate) and isinstance(
            nested.input_op, NestedTupleSource
        )
        if not (incremental and self._two_step):
            return self._run_grouped_raw(
                plan, global_ops, group_by, partitions, stats, report
            )
        key_vars = [var for var, _ in group_by.keys]
        work = GroupTableWork(group_by)
        outcomes = self._map(
            plan, [(p, work) for p in range(partitions)], stats, report
        )
        partition_seconds, injected_seconds, peak = self._collect_timing(outcomes)
        local_tables: list[dict] = []
        for outcome in outcomes:
            if outcome.skipped:
                continue
            local_tables.append(outcome.value)
            stats.exchange_tuples += len(outcome.value)
            stats.exchange_bytes += len(outcome.value) * _PARTIAL_TUPLE_BYTES
        self._record_frames(
            group_by,
            n_bytes=sum(len(t) for t in local_tables) * _PARTIAL_TUPLE_BYTES,
        )
        # Coordinator: combine partials, finalize groups, run the ops above.
        memory = self._tracker()
        ctx = self._context(None, memory, stats)
        started = time.perf_counter()
        combined: dict = {}
        for table in local_tables:
            # Workers ship plain partial values (picklable; spill-backed
            # accumulator state never crosses the process boundary).
            for key, (key_values, partials) in table.items():
                state = combined.get(key)
                if state is None:
                    state = (key_values, make_accumulators(nested.specs))
                    combined[key] = state
                for target, partial_value in zip(state[1], partials):
                    target.absorb(partial_value)
        def finalized():
            for key_values, accumulators in combined.values():
                out = dict(zip(key_vars, key_values))
                for accumulator in accumulators:
                    out[accumulator.spec.variable] = accumulator.finish(ctx)
                yield out

        items = _finish_through_globals(global_ops, finalized(), ctx)
        global_seconds = time.perf_counter() - started
        return QueryResult(
            items,
            partition_seconds=partition_seconds,
            injected_seconds=injected_seconds,
            global_seconds=global_seconds,
            peak_memory_bytes=max(peak, memory.peak),
            stats=stats,
            strategy="grouped-two-step",
        )

    def _run_grouped_raw(
        self,
        plan: LogicalPlan,
        global_ops: list[Operator],
        group_by: GroupBy,
        partitions: int,
        stats: ExecutionStats,
        report: DegradationReport,
    ) -> QueryResult:
        """Two-step disabled: ship raw tuples and group at the coordinator."""
        work = TupleStreamWork(group_by.input_op)
        outcomes = self._map(
            plan, [(p, work) for p in range(partitions)], stats, report
        )
        partition_seconds, injected_seconds, peak = self._collect_timing(outcomes)
        shipped: list[Tuple] = []
        for outcome in outcomes:
            if outcome.skipped:
                continue
            for tup in outcome.value:
                shipped.append(tup)
                stats.exchange_tuples += 1
                stats.exchange_bytes += sizeof_tuple(tup)
        self._record_frames(group_by, tuples=shipped)
        memory = self._tracker()
        ctx = self._context(None, memory, stats)
        started = time.perf_counter()
        stream = run_chain([group_by], iter(shipped), ctx)
        items = _finish_through_globals(global_ops, stream, ctx)
        global_seconds = time.perf_counter() - started
        return QueryResult(
            items,
            partition_seconds=partition_seconds,
            injected_seconds=injected_seconds,
            global_seconds=global_seconds,
            peak_memory_bytes=max(peak, memory.peak),
            stats=stats,
            strategy="grouped-raw",
        )

    def _run_aggregated(
        self,
        plan: LogicalPlan,
        global_ops: list[Operator],
        aggregate: Aggregate,
        partitions: int,
        stats: ExecutionStats,
        report: DegradationReport,
    ) -> QueryResult:
        """Global aggregate with partial/combine across partitions."""
        if not self._two_step:
            return self._run_aggregated_raw(
                plan, global_ops, aggregate, partitions, stats, report
            )
        work = FoldPartialsWork(aggregate)
        outcomes = self._map(
            plan, [(p, work) for p in range(partitions)], stats, report
        )
        partition_seconds, injected_seconds, peak = self._collect_timing(outcomes)
        partials: list[list] = []
        for outcome in outcomes:
            if outcome.skipped:
                continue
            partials.append(outcome.value)
            stats.exchange_tuples += 1
            stats.exchange_bytes += _PARTIAL_TUPLE_BYTES
        self._record_frames(
            aggregate, n_bytes=len(partials) * _PARTIAL_TUPLE_BYTES
        )
        memory = self._tracker()
        ctx = self._context(None, memory, stats)
        started = time.perf_counter()
        accumulators = make_accumulators(aggregate.specs)
        for partial in partials:
            for accumulator, value in zip(accumulators, partial):
                accumulator.absorb(value)
        final_tuple = {
            acc.spec.variable: acc.finish(ctx) for acc in accumulators
        }
        items = _finish_through_globals(global_ops, iter([final_tuple]), ctx)
        global_seconds = time.perf_counter() - started
        return QueryResult(
            items,
            partition_seconds=partition_seconds,
            injected_seconds=injected_seconds,
            global_seconds=global_seconds,
            peak_memory_bytes=max(peak, memory.peak),
            stats=stats,
            strategy="aggregated-two-step",
        )

    def _run_aggregated_raw(
        self,
        plan: LogicalPlan,
        global_ops: list[Operator],
        aggregate: Aggregate,
        partitions: int,
        stats: ExecutionStats,
        report: DegradationReport,
    ) -> QueryResult:
        work = TupleStreamWork(aggregate.input_op)
        outcomes = self._map(
            plan, [(p, work) for p in range(partitions)], stats, report
        )
        partition_seconds, injected_seconds, peak = self._collect_timing(outcomes)
        shipped: list[Tuple] = []
        for outcome in outcomes:
            if outcome.skipped:
                continue
            for tup in outcome.value:
                shipped.append(tup)
                stats.exchange_tuples += 1
                stats.exchange_bytes += sizeof_tuple(tup)
        self._record_frames(aggregate, tuples=shipped)
        memory = self._tracker()
        ctx = self._context(None, memory, stats)
        started = time.perf_counter()
        stream = run_chain([aggregate], iter(shipped), ctx)
        items = _finish_through_globals(global_ops, stream, ctx)
        global_seconds = time.perf_counter() - started
        return QueryResult(
            items,
            partition_seconds=partition_seconds,
            injected_seconds=injected_seconds,
            global_seconds=global_seconds,
            peak_memory_bytes=max(peak, memory.peak),
            stats=stats,
            strategy="aggregated-raw",
        )

    def _run_join(
        self,
        plan: LogicalPlan,
        global_ops: list[Operator],
        aggregate: Aggregate | None,
        mid_ops: list[Operator],
        join: Join,
        partitions: int,
        stats: ExecutionStats,
        report: DegradationReport,
    ) -> QueryResult:
        """Hash-partitioned join (plus optional aggregate on top).

        Phase 1: each partition scans its share of both sides and hashes
        tuples into per-partition buckets (the exchange).  Phase 2: each
        bucket joins locally, runs the intermediate operators, and — when
        an aggregate sits on top — folds a partial that the coordinator
        combines.  Both phases run on the configured backend; the bucket
        hash is process-stable so exchange sides hashed in different
        workers still meet in the same bucket.

        The partition policy applies to both phases: a skipped phase-1
        partition contributes no tuples to any bucket; a skipped phase-2
        bucket contributes nothing to the result.
        """
        left_keys, right_keys, residual = split_join_condition(join)
        if not left_keys:
            # Cross products cannot hash-partition; run globally.
            return self._run_global(plan, stats)
        buckets = partitions
        left_buckets: list[list[Tuple]] = [[] for _ in range(buckets)]
        right_buckets: list[list[Tuple]] = [[] for _ in range(buckets)]
        if join.exchange in ("broadcast-left", "broadcast-right"):
            # Broadcast exchange: the big side stays in its scan
            # partition (bucket = partition index, zero shipping) and
            # the tiny side is replicated into every bucket, in
            # partition order so the replica is identical everywhere.
            scan = BroadcastScanWork(
                join, tuple(left_keys), tuple(right_keys)
            )
            outcomes = self._map(
                plan, [(p, scan) for p in range(partitions)], stats, report
            )
            phase1_seconds, injected_seconds, peak = self._collect_timing(
                outcomes
            )
            broadcast_left = join.exchange == "broadcast-left"
            local_buckets = right_buckets if broadcast_left else left_buckets
            broadcast_all: list[Tuple] = []
            broadcast_bytes = 0
            for outcome in outcomes:
                if outcome.skipped:
                    continue
                local_rows, broadcast_rows, n_bytes = outcome.value
                local_buckets[outcome.partition].extend(local_rows)
                broadcast_all.extend(broadcast_rows)
                broadcast_bytes += n_bytes
            replicated = left_buckets if broadcast_left else right_buckets
            for bucket in range(buckets):
                replicated[bucket].extend(broadcast_all)
            stats.exchange_tuples += len(broadcast_all) * buckets
            stats.exchange_bytes += broadcast_bytes * buckets
        else:
            exchange = ExchangeWork(
                join, tuple(left_keys), tuple(right_keys), buckets
            )
            outcomes = self._map(
                plan, [(p, exchange) for p in range(partitions)], stats, report
            )
            phase1_seconds, injected_seconds, peak = self._collect_timing(
                outcomes
            )
            for outcome in outcomes:
                if outcome.skipped:
                    continue
                local_left, local_right, exchanged_tuples, exchanged_bytes = (
                    outcome.value
                )
                for bucket in range(buckets):
                    left_buckets[bucket].extend(local_left[bucket])
                    right_buckets[bucket].extend(local_right[bucket])
                stats.exchange_tuples += exchanged_tuples
                stats.exchange_bytes += exchanged_bytes
        if self._profile is not None:
            if join.annotated:
                self._profile.set_detail(
                    join,
                    "physical",
                    {
                        "build_side": join.build_side,
                        "exchange": join.exchange,
                        "skew_keys": len(join.skew_keys),
                    },
                )
            self._profile.set_detail(
                join, "left_buckets", [len(b) for b in left_buckets]
            )
            self._profile.set_detail(
                join, "right_buckets", [len(b) for b in right_buckets]
            )
            self._record_frames(
                join,
                tuples=(
                    tup
                    for side in (left_buckets, right_buckets)
                    for bucket in side
                    for tup in bucket
                ),
            )
        use_two_step = aggregate is not None and self._two_step
        bucket_tasks = [
            (
                bucket,
                JoinBucketWork(
                    tuple(left_buckets[bucket]),
                    tuple(right_buckets[bucket]),
                    tuple(left_keys),
                    tuple(right_keys),
                    residual,
                    tuple(mid_ops),
                    aggregate if use_two_step else None,
                    build_side=join.build_side,
                ),
            )
            for bucket in range(buckets)
        ]
        bucket_outcomes = self._map(
            plan, bucket_tasks, stats, report, charge_delay=False
        )
        phase2_seconds, phase2_injected, phase2_peak = self._collect_timing(
            bucket_outcomes
        )
        peak = max(peak, phase2_peak)
        partials: list[list] = []
        bucket_outputs: list[Tuple] = []
        for outcome in bucket_outcomes:
            if outcome.skipped:
                continue
            if use_two_step:
                partials.append(outcome.value)
                stats.exchange_tuples += 1
                stats.exchange_bytes += _PARTIAL_TUPLE_BYTES
            else:
                for tup in outcome.value:
                    bucket_outputs.append(tup)
                    # Joined tuples ship to the coordinator for the
                    # global aggregate / result assembly.
                    stats.exchange_tuples += 1
                    stats.exchange_bytes += sizeof_tuple(tup)
        if use_two_step:
            self._record_frames(
                join, n_bytes=len(partials) * _PARTIAL_TUPLE_BYTES
            )
        else:
            self._record_frames(join, tuples=bucket_outputs)
        partition_seconds = [
            phase1_seconds[i] + phase2_seconds[i] for i in range(partitions)
        ]
        injected_seconds = [
            injected_seconds[i] + phase2_injected[i] for i in range(partitions)
        ]
        memory = self._tracker()
        ctx = self._context(None, memory, stats)
        started = time.perf_counter()
        if use_two_step:
            accumulators = make_accumulators(aggregate.specs)
            for partial in partials:
                for accumulator, value in zip(accumulators, partial):
                    accumulator.absorb(value)
            final_tuple = {
                acc.spec.variable: acc.finish(ctx) for acc in accumulators
            }
            items = _finish_through_globals(global_ops, iter([final_tuple]), ctx)
        elif aggregate is not None:
            stream = run_chain([aggregate], iter(bucket_outputs), ctx)
            items = _finish_through_globals(global_ops, stream, ctx)
        else:
            items = _finish_through_globals(global_ops, iter(bucket_outputs), ctx)
        global_seconds = time.perf_counter() - started
        return QueryResult(
            items,
            partition_seconds=partition_seconds,
            injected_seconds=injected_seconds,
            global_seconds=global_seconds,
            peak_memory_bytes=max(peak, memory.peak),
            stats=stats,
            strategy="hash-join",
        )


_PARTIAL_TUPLE_BYTES = 128


def _fold_recovery_event(
    event, stats: ExecutionStats, report: DegradationReport
) -> None:
    """Route one recovery-layer event into stats and/or the report.

    Worker losses and ladder steps are deterministic under a seeded kill
    schedule and belong in the degradation report; pool rebuilds and the
    speculation counters are timing-dependent and stay stats-only so the
    report keeps its byte-identical-across-runs guarantee.
    """
    kind = event.kind
    if kind == "worker_loss":
        stats.worker_crashes += 1
        report.record_worker_loss(event.partition, event.attempt, event.message)
    elif kind == "ladder_step":
        stats.ladder_steps += 1
        report.record_ladder_step(event.tier, event.to_tier, event.message)
    elif kind == "pool_rebuild":
        stats.pool_rebuilds += 1
    elif kind == "speculative_launch":
        stats.speculative_launched += 1
    elif kind == "speculative_win":
        stats.speculative_wins += 1
    elif kind == "speculative_loss":
        stats.speculative_losses += 1


# ---------------------------------------------------------------------------
# Plan-shape analysis
# ---------------------------------------------------------------------------


def _split(plan: LogicalPlan) -> tuple[list[Operator], Operator]:
    """Peel non-blocking operators off the root.

    Returns (global_ops top-down including DISTRIBUTE-RESULT, boundary).
    """
    global_ops: list[Operator] = []
    node = plan.root
    while isinstance(node, (DistributeResult,) + _CHAIN_OPS):
        global_ops.append(node)
        node = node.inputs[0]
    return global_ops, node


def _is_chain_to_scan(op: Operator) -> bool:
    """True if *op* is a chain of pipelined operators over a DATASCAN."""
    node = op
    while isinstance(node, _CHAIN_OPS):
        node = node.inputs[0]
    return isinstance(node, DataScan)


def _find_join(op: Operator) -> tuple[list[Operator], Join] | None:
    """Find a JOIN along the unary chain below *op* (inclusive).

    Returns (ops between, bottom-up order; the join), or None.
    """
    mid: list[Operator] = []
    node = op
    while True:
        if isinstance(node, Join):
            return list(reversed(mid)), node
        if isinstance(node, _CHAIN_OPS):
            mid.append(node)
            node = node.inputs[0]
            continue
        return None


def _finish_through_globals(
    global_ops: list[Operator], stream, ctx: EvaluationContext
) -> list[Item]:
    """Run the peeled root operators (top-down list) over *stream*."""
    if not global_ops or not isinstance(global_ops[0], DistributeResult):
        raise PlanError("expected DISTRIBUTE-RESULT at the plan root")
    bottom_up = list(reversed(global_ops))
    items: list[Item] = []
    for tup in run_chain(bottom_up, stream, ctx):
        items.extend(tup["__result__"])
    return items
