"""Partitioned query execution.

The executor takes a (rewritten) logical plan and runs it over a
partitioned collection, mirroring how VXQuery's Hyracks jobs run:

- **pipelined plans** (selections like Q0/Q0b) run one plan instance per
  partition; results concatenate;
- **grouped aggregations** (Q1/Q1b) run partition-local GROUP-BYs and a
  coordinator combine when two-step aggregation is enabled; with it
  disabled, raw tuples ship to the coordinator (the ablation of
  Section 4.3's last rule);
- **global aggregates** (Q2's ``avg``) use the same partial/combine
  decomposition;
- **equi-joins** hash-exchange both sides into per-partition buckets and
  join each bucket locally (Hyracks' hash-partitioned join);
- plans with no DATASCAN — the naive, pre-pipelining shape — cannot be
  partitioned at all and run as a single global instance, exactly the
  behaviour that makes the "before rules" bars of Figures 13-16 tall.

Every partition's work is executed for real and timed; the result
carries per-partition seconds so a
:class:`~repro.hyracks.cluster.ClusterSpec` can compose a simulated
cluster makespan.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.algebra.context import EvaluationContext
from repro.algebra.operators import (
    Aggregate,
    Assign,
    DataScan,
    DistributeResult,
    GroupBy,
    Join,
    NestedTupleSource,
    Operator,
    Select,
    Subplan,
    Unnest,
)
from repro.algebra.plan import LogicalPlan
from repro.hyracks.aggregates import make_accumulators
from repro.hyracks.cluster import ClusterSpec
from repro.hyracks.memory import MemoryTracker
from repro.hyracks.operators import (
    canonical_key,
    execute,
    hash_join,
    run_chain,
    run_plan,
    split_join_condition,
)
from repro.hyracks.tuples import Tuple, sizeof_tuple
from repro.jsonlib.items import Item

_CHAIN_OPS = (Assign, Select, Unnest, Subplan)


@dataclass
class ExecutionStats:
    """Counters accumulated while a query runs."""

    items_scanned: int = 0
    scanned_item_bytes: int = 0
    exchange_tuples: int = 0
    exchange_bytes: int = 0


@dataclass
class QueryResult:
    """Everything a query execution produced and measured."""

    items: list
    partition_seconds: list[float] = field(default_factory=list)
    global_seconds: float = 0.0
    wall_seconds: float = 0.0
    peak_memory_bytes: int = 0
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    strategy: str = "global"

    def simulated_seconds(self, cluster: ClusterSpec, smooth: bool = True) -> float:
        """Cluster makespan for this execution under *cluster*.

        With ``smooth`` (the default), per-partition times are replaced
        by their mean before placement: partitions carry symmetric data
        shares, so the variance measured by running them sequentially in
        one process is scheduler/GC jitter, not real skew.  Pass
        ``smooth=False`` to place the raw measurements.
        """
        seconds = self.partition_seconds
        if smooth and seconds:
            mean = sum(seconds) / len(seconds)
            seconds = [mean] * len(seconds)
        return cluster.makespan(
            seconds,
            exchange_bytes=self.stats.exchange_bytes,
            global_seconds=self.global_seconds,
        )


class PartitionedExecutor:
    """Runs logical plans over a partitioned data source.

    Parameters
    ----------
    source:
        A :class:`~repro.algebra.context.DataSource`.
    functions:
        Scalar-function library (defaults to the builtins).
    two_step_aggregation:
        Enable partition-local/global aggregation (Section 4.3); when
        off, grouped and global aggregations ship raw tuples to the
        coordinator.
    memory_budget_bytes:
        Optional per-instance memory budget.
    """

    def __init__(
        self,
        source,
        functions=None,
        two_step_aggregation: bool = True,
        memory_budget_bytes: int | None = None,
    ):
        self._source = source
        self._functions = functions
        self._two_step = two_step_aggregation
        self._memory_budget = memory_budget_bytes

    # -- public ---------------------------------------------------------------

    def run(self, plan: LogicalPlan) -> QueryResult:
        """Execute *plan* and return items plus measurements."""
        started = time.perf_counter()
        stats = ExecutionStats()
        scans = plan.operators_of(DataScan)
        partition_counts = {
            self._source.partition_count(scan.collection) for scan in scans
        }
        if not scans:
            result = self._run_global(plan, stats)
        elif len(partition_counts) > 1:
            # Collections partitioned differently cannot share one
            # partition-aligned job; run a single global instance.
            result = self._run_global(plan, stats)
        else:
            (partitions,) = partition_counts
            if partitions <= 0:
                raise PlanError(
                    f"collection {scans[0].collection!r} has no partitions"
                )
            result = self._run_partitioned(plan, partitions, stats)
        result.wall_seconds = time.perf_counter() - started
        return result

    # -- contexts ---------------------------------------------------------------

    def _context(
        self, partition: int | None, memory: MemoryTracker, stats: ExecutionStats
    ) -> EvaluationContext:
        return EvaluationContext(
            source=self._source,
            functions=self._functions,
            memory=memory,
            partition=partition,
            stats=stats,
        )

    def _tracker(self) -> MemoryTracker:
        return MemoryTracker(self._memory_budget, context="query execution")

    # -- strategies ---------------------------------------------------------------

    def _run_global(self, plan: LogicalPlan, stats: ExecutionStats) -> QueryResult:
        """Single-instance execution (naive plans, unsupported shapes)."""
        memory = self._tracker()
        ctx = self._context(None, memory, stats)
        started = time.perf_counter()
        items = run_plan(plan, ctx)
        elapsed = time.perf_counter() - started
        return QueryResult(
            items,
            partition_seconds=[elapsed],
            peak_memory_bytes=memory.peak,
            stats=stats,
            strategy="global",
        )

    def _run_partitioned(
        self, plan: LogicalPlan, partitions: int, stats: ExecutionStats
    ) -> QueryResult:
        global_ops, boundary = _split(plan)
        if isinstance(boundary, GroupBy):
            if _find_join(boundary.input_op) is None and _is_chain_to_scan(
                boundary.input_op
            ):
                return self._run_grouped(
                    plan, global_ops, boundary, partitions, stats
                )
            return self._run_global(plan, stats)
        if isinstance(boundary, Aggregate):
            join_parts = _find_join(boundary.input_op)
            if join_parts is not None:
                mid_ops, join = join_parts
                if _is_chain_to_scan(join.left) and _is_chain_to_scan(join.right):
                    return self._run_join(
                        plan,
                        global_ops,
                        boundary,
                        mid_ops,
                        join,
                        partitions,
                        stats,
                    )
                return self._run_global(plan, stats)
            if _is_chain_to_scan(boundary.input_op):
                return self._run_aggregated(
                    plan, global_ops, boundary, partitions, stats
                )
            return self._run_global(plan, stats)
        if isinstance(boundary, Join):
            if _is_chain_to_scan(boundary.left) and _is_chain_to_scan(
                boundary.right
            ):
                return self._run_join(
                    plan, global_ops, None, [], boundary, partitions, stats
                )
            return self._run_global(plan, stats)
        if isinstance(boundary, DataScan) or _is_chain_to_scan(boundary):
            return self._run_pipelined(plan, partitions, stats)
        return self._run_global(plan, stats)

    def _run_pipelined(
        self, plan: LogicalPlan, partitions: int, stats: ExecutionStats
    ) -> QueryResult:
        """Fully pipelined plan: one independent instance per partition."""
        items: list[Item] = []
        partition_seconds: list[float] = []
        peak = 0
        for partition in range(partitions):
            memory = self._tracker()
            ctx = self._context(partition, memory, stats)
            started = time.perf_counter()
            items.extend(run_plan(plan, ctx))
            partition_seconds.append(time.perf_counter() - started)
            peak = max(peak, memory.peak)
        return QueryResult(
            items,
            partition_seconds=partition_seconds,
            peak_memory_bytes=peak,
            stats=stats,
            strategy="pipelined",
        )

    def _run_grouped(
        self,
        plan: LogicalPlan,
        global_ops: list[Operator],
        group_by: GroupBy,
        partitions: int,
        stats: ExecutionStats,
    ) -> QueryResult:
        """Partition-local GROUP-BY plus coordinator combine."""
        nested = group_by.nested_root
        incremental = isinstance(nested, Aggregate) and isinstance(
            nested.input_op, NestedTupleSource
        )
        if not (incremental and self._two_step):
            return self._run_grouped_raw(
                plan, global_ops, group_by, partitions, stats
            )
        key_exprs = [expr for _, expr in group_by.keys]
        key_vars = [var for var, _ in group_by.keys]
        partition_seconds: list[float] = []
        peak = 0
        local_tables: list[dict] = []
        for partition in range(partitions):
            memory = self._tracker()
            ctx = self._context(partition, memory, stats)
            started = time.perf_counter()
            table: dict = {}
            for tup in execute(group_by.input_op, ctx):
                key_values = [expr.evaluate(tup, ctx) for expr in key_exprs]
                key = tuple(canonical_key(v) for v in key_values)
                state = table.get(key)
                if state is None:
                    state = (key_values, make_accumulators(nested.specs))
                    table[key] = state
                for accumulator in state[1]:
                    accumulator.add(tup, ctx)
            partition_seconds.append(time.perf_counter() - started)
            peak = max(peak, memory.peak)
            local_tables.append(table)
            stats.exchange_tuples += len(table)
            stats.exchange_bytes += len(table) * _PARTIAL_TUPLE_BYTES
        # Coordinator: combine partials, finalize groups, run the ops above.
        memory = self._tracker()
        ctx = self._context(None, memory, stats)
        started = time.perf_counter()
        combined: dict = {}
        for table in local_tables:
            for key, (key_values, accumulators) in table.items():
                state = combined.get(key)
                if state is None:
                    state = (key_values, make_accumulators(nested.specs))
                    combined[key] = state
                for target, local in zip(state[1], accumulators):
                    target.absorb(local.partial())
        def finalized():
            for key_values, accumulators in combined.values():
                out = dict(zip(key_vars, key_values))
                for accumulator in accumulators:
                    out[accumulator.spec.variable] = accumulator.finish(ctx)
                yield out

        items = _finish_through_globals(global_ops, finalized(), ctx)
        global_seconds = time.perf_counter() - started
        return QueryResult(
            items,
            partition_seconds=partition_seconds,
            global_seconds=global_seconds,
            peak_memory_bytes=max(peak, memory.peak),
            stats=stats,
            strategy="grouped-two-step",
        )

    def _run_grouped_raw(
        self,
        plan: LogicalPlan,
        global_ops: list[Operator],
        group_by: GroupBy,
        partitions: int,
        stats: ExecutionStats,
    ) -> QueryResult:
        """Two-step disabled: ship raw tuples and group at the coordinator."""
        partition_seconds: list[float] = []
        peak = 0
        shipped: list[Tuple] = []
        for partition in range(partitions):
            memory = self._tracker()
            ctx = self._context(partition, memory, stats)
            started = time.perf_counter()
            for tup in execute(group_by.input_op, ctx):
                shipped.append(tup)
                stats.exchange_tuples += 1
                stats.exchange_bytes += sizeof_tuple(tup)
            partition_seconds.append(time.perf_counter() - started)
            peak = max(peak, memory.peak)
        memory = self._tracker()
        ctx = self._context(None, memory, stats)
        started = time.perf_counter()
        stream = run_chain([group_by], iter(shipped), ctx)
        items = _finish_through_globals(global_ops, stream, ctx)
        global_seconds = time.perf_counter() - started
        return QueryResult(
            items,
            partition_seconds=partition_seconds,
            global_seconds=global_seconds,
            peak_memory_bytes=max(peak, memory.peak),
            stats=stats,
            strategy="grouped-raw",
        )

    def _run_aggregated(
        self,
        plan: LogicalPlan,
        global_ops: list[Operator],
        aggregate: Aggregate,
        partitions: int,
        stats: ExecutionStats,
    ) -> QueryResult:
        """Global aggregate with partial/combine across partitions."""
        if not self._two_step:
            return self._run_aggregated_raw(
                plan, global_ops, aggregate, partitions, stats
            )
        partition_seconds: list[float] = []
        peak = 0
        partials: list[list] = []
        for partition in range(partitions):
            memory = self._tracker()
            ctx = self._context(partition, memory, stats)
            started = time.perf_counter()
            accumulators = make_accumulators(aggregate.specs)
            for tup in execute(aggregate.input_op, ctx):
                for accumulator in accumulators:
                    accumulator.add(tup, ctx)
            partials.append([acc.partial() for acc in accumulators])
            partition_seconds.append(time.perf_counter() - started)
            peak = max(peak, memory.peak)
            stats.exchange_tuples += 1
            stats.exchange_bytes += _PARTIAL_TUPLE_BYTES
        memory = self._tracker()
        ctx = self._context(None, memory, stats)
        started = time.perf_counter()
        accumulators = make_accumulators(aggregate.specs)
        for partial in partials:
            for accumulator, value in zip(accumulators, partial):
                accumulator.absorb(value)
        final_tuple = {
            acc.spec.variable: acc.finish(ctx) for acc in accumulators
        }
        items = _finish_through_globals(global_ops, iter([final_tuple]), ctx)
        global_seconds = time.perf_counter() - started
        return QueryResult(
            items,
            partition_seconds=partition_seconds,
            global_seconds=global_seconds,
            peak_memory_bytes=max(peak, memory.peak),
            stats=stats,
            strategy="aggregated-two-step",
        )

    def _run_aggregated_raw(
        self,
        plan: LogicalPlan,
        global_ops: list[Operator],
        aggregate: Aggregate,
        partitions: int,
        stats: ExecutionStats,
    ) -> QueryResult:
        partition_seconds: list[float] = []
        peak = 0
        shipped: list[Tuple] = []
        for partition in range(partitions):
            memory = self._tracker()
            ctx = self._context(partition, memory, stats)
            started = time.perf_counter()
            for tup in execute(aggregate.input_op, ctx):
                shipped.append(tup)
                stats.exchange_tuples += 1
                stats.exchange_bytes += sizeof_tuple(tup)
            partition_seconds.append(time.perf_counter() - started)
            peak = max(peak, memory.peak)
        memory = self._tracker()
        ctx = self._context(None, memory, stats)
        started = time.perf_counter()
        stream = run_chain([aggregate], iter(shipped), ctx)
        items = _finish_through_globals(global_ops, stream, ctx)
        global_seconds = time.perf_counter() - started
        return QueryResult(
            items,
            partition_seconds=partition_seconds,
            global_seconds=global_seconds,
            peak_memory_bytes=max(peak, memory.peak),
            stats=stats,
            strategy="aggregated-raw",
        )

    def _run_join(
        self,
        plan: LogicalPlan,
        global_ops: list[Operator],
        aggregate: Aggregate | None,
        mid_ops: list[Operator],
        join: Join,
        partitions: int,
        stats: ExecutionStats,
    ) -> QueryResult:
        """Hash-partitioned join (plus optional aggregate on top).

        Phase 1: each partition scans its share of both sides and hashes
        tuples into per-partition buckets (the exchange).  Phase 2: each
        bucket joins locally, runs the intermediate operators, and — when
        an aggregate sits on top — folds a partial that the coordinator
        combines.
        """
        left_keys, right_keys, residual = split_join_condition(join)
        if not left_keys:
            # Cross products cannot hash-partition; run globally.
            return self._run_global(plan, stats)
        buckets = partitions
        left_buckets: list[list[Tuple]] = [[] for _ in range(buckets)]
        right_buckets: list[list[Tuple]] = [[] for _ in range(buckets)]
        phase1_seconds = [0.0] * partitions
        peak = 0
        for partition in range(partitions):
            memory = self._tracker()
            ctx = self._context(partition, memory, stats)
            started = time.perf_counter()
            for side, keys, target in (
                (join.left, left_keys, left_buckets),
                (join.right, right_keys, right_buckets),
            ):
                for tup in execute(side, ctx):
                    key = tuple(
                        canonical_key(expr.evaluate(tup, ctx)) for expr in keys
                    )
                    target[hash(key) % buckets].append(tup)
                    stats.exchange_tuples += 1
                    stats.exchange_bytes += sizeof_tuple(tup)
            phase1_seconds[partition] = time.perf_counter() - started
            peak = max(peak, memory.peak)
        phase2_seconds = [0.0] * buckets
        use_two_step = aggregate is not None and self._two_step
        partials: list[list] = []
        bucket_outputs: list[Tuple] = []
        for bucket in range(buckets):
            memory = self._tracker()
            ctx = self._context(bucket, memory, stats)
            started = time.perf_counter()
            joined = hash_join(
                iter(left_buckets[bucket]),
                iter(right_buckets[bucket]),
                left_keys,
                right_keys,
                residual,
                ctx,
            )
            stream = run_chain(mid_ops, joined, ctx)
            if use_two_step:
                accumulators = make_accumulators(aggregate.specs)
                for tup in stream:
                    for accumulator in accumulators:
                        accumulator.add(tup, ctx)
                partials.append([acc.partial() for acc in accumulators])
                stats.exchange_tuples += 1
                stats.exchange_bytes += _PARTIAL_TUPLE_BYTES
            else:
                for tup in stream:
                    bucket_outputs.append(tup)
                    # Joined tuples ship to the coordinator for the
                    # global aggregate / result assembly.
                    stats.exchange_tuples += 1
                    stats.exchange_bytes += sizeof_tuple(tup)
            phase2_seconds[bucket] = time.perf_counter() - started
            peak = max(peak, memory.peak)
        partition_seconds = [
            phase1_seconds[i] + phase2_seconds[i] for i in range(partitions)
        ]
        memory = self._tracker()
        ctx = self._context(None, memory, stats)
        started = time.perf_counter()
        if use_two_step:
            accumulators = make_accumulators(aggregate.specs)
            for partial in partials:
                for accumulator, value in zip(accumulators, partial):
                    accumulator.absorb(value)
            final_tuple = {
                acc.spec.variable: acc.finish(ctx) for acc in accumulators
            }
            items = _finish_through_globals(global_ops, iter([final_tuple]), ctx)
        elif aggregate is not None:
            stream = run_chain([aggregate], iter(bucket_outputs), ctx)
            items = _finish_through_globals(global_ops, stream, ctx)
        else:
            items = _finish_through_globals(global_ops, iter(bucket_outputs), ctx)
        global_seconds = time.perf_counter() - started
        return QueryResult(
            items,
            partition_seconds=partition_seconds,
            global_seconds=global_seconds,
            peak_memory_bytes=max(peak, memory.peak),
            stats=stats,
            strategy="hash-join",
        )


_PARTIAL_TUPLE_BYTES = 128


# ---------------------------------------------------------------------------
# Plan-shape analysis
# ---------------------------------------------------------------------------


def _split(plan: LogicalPlan) -> tuple[list[Operator], Operator]:
    """Peel non-blocking operators off the root.

    Returns (global_ops top-down including DISTRIBUTE-RESULT, boundary).
    """
    global_ops: list[Operator] = []
    node = plan.root
    while isinstance(node, (DistributeResult,) + _CHAIN_OPS):
        global_ops.append(node)
        node = node.inputs[0]
    return global_ops, node


def _is_chain_to_scan(op: Operator) -> bool:
    """True if *op* is a chain of pipelined operators over a DATASCAN."""
    node = op
    while isinstance(node, _CHAIN_OPS):
        node = node.inputs[0]
    return isinstance(node, DataScan)


def _find_join(op: Operator) -> tuple[list[Operator], Join] | None:
    """Find a JOIN along the unary chain below *op* (inclusive).

    Returns (ops between, bottom-up order; the join), or None.
    """
    mid: list[Operator] = []
    node = op
    while True:
        if isinstance(node, Join):
            return list(reversed(mid)), node
        if isinstance(node, _CHAIN_OPS):
            mid.append(node)
            node = node.inputs[0]
            continue
        return None


def _finish_through_globals(
    global_ops: list[Operator], stream, ctx: EvaluationContext
) -> list[Item]:
    """Run the peeled root operators (top-down list) over *stream*."""
    if not global_ops or not isinstance(global_ops[0], DistributeResult):
        raise PlanError("expected DISTRIBUTE-RESULT at the plan root")
    bottom_up = list(reversed(global_ops))
    items: list[Item] = []
    for tup in run_chain(bottom_up, stream, ctx):
        items.extend(tup["__result__"])
    return items
