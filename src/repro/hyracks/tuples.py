"""Tuple representation and size estimation.

A runtime tuple is a mapping from variable names to sequences (lists of
items).  Tuples are copied on extension (``extend_tuple``) so upstream
operators can hold references safely; sequences themselves are shared.
"""

from __future__ import annotations

from typing import Mapping

from repro.jsonlib.items import sizeof_item

Tuple = dict

_TUPLE_BASE = 64
_PER_FIELD = 24


def extend_tuple(tup: Tuple, variable: str, sequence: list) -> Tuple:
    """A copy of *tup* with *variable* bound to *sequence*."""
    extended = dict(tup)
    extended[variable] = sequence
    return extended


def merge_tuples(left: Tuple, right: Mapping) -> Tuple:
    """A copy of *left* with every binding of *right* added."""
    merged = dict(left)
    merged.update(right)
    return merged


def sizeof_tuple(tup: Tuple) -> int:
    """Estimated bytes a tuple occupies (used by frames and exchanges)."""
    total = _TUPLE_BASE
    for name, sequence in tup.items():
        total += _PER_FIELD + len(name)
        for item in sequence:
            total += sizeof_item(item)
    return total


def project_tuple(tup: Tuple, variables: list[str]) -> Tuple:
    """Keep only *variables* (missing names are simply absent)."""
    return {name: tup[name] for name in variables if name in tup}
