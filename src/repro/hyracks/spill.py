"""Spill-to-disk execution: bounded-memory blocking operators.

The paper's runtime inherits Hyracks' discipline of processing data in
fixed-size frames under a bounded memory budget (Section 3.1; Table 3
and Figure 18b measure exactly this); the companion VXQuery systems
paper stresses that blocking operators must degrade to disk rather than
die when inputs exceed memory.  This module supplies that degradation
path:

- :class:`SpillManager` — owns a per-attempt temp directory of **run
  files**; tuples are batched into frame-sized pickles through the
  existing :class:`~repro.hyracks.frames.FrameWriter`, run files are
  named deterministically (``run-NNNNNN-<label>.frames``), and
  ``close()`` guarantees cleanup no matter how execution unwound;
- :func:`fold_group_table` — external hash GROUP-BY
  (partition-and-recurse over salted key buckets);
- :func:`grace_join_overflow` — grace hash join (both sides partitioned
  into bucket runs, each bucket joined recursively);
- :func:`external_sort` — external merge sort (sorted runs merged with
  ``heapq.merge``);
- :class:`SpilledSequence` — a materialized buffer (nested-loop build
  sides, ``sequence`` aggregates) that overflows to run files.

Spilling triggers when the :class:`~repro.hyracks.memory.MemoryTracker`
*declines* a charge (``try_allocate``) instead of raising; with no spill
manager on the context the old raising behaviour is preserved exactly.
Results are byte-identical with spill on and off: every external
algorithm tags records with arrival sequence numbers and restores the
in-memory emission order (first-seen order for groups, probe order for
joins, stable spec order for sorts).

Spill writes run through an optional **fault hook** (the resilience
layer's :meth:`~repro.resilience.faults.FaultPlan.fail_spill`), so a
:class:`~repro.resilience.faults.FaultPlan` can kill a spill write and a
:class:`~repro.resilience.retry.RetryPolicy` can recover the partition.
"""

from __future__ import annotations

import heapq
import itertools
import os
import pickle
import shutil
import tempfile
import uuid
import zlib
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Iterator

from repro.envutil import env_setting
from repro.errors import SpillError
from repro.hyracks.frames import DEFAULT_FRAME_BYTES, FrameWriter
from repro.hyracks.tuples import Tuple, merge_tuples, sizeof_tuple
from repro.jsonlib.items import canonical_key

#: environment variable consulted for a default spill directory
SPILL_DIR_ENV_VAR = "REPRO_SPILL_DIR"

#: charge for one hash-group entry (mirrors operators._GROUP_ENTRY_BYTES)
GROUP_ENTRY_BYTES = 96


def estimate_record_bytes(record) -> int:
    """Rough in-memory size of an arbitrary spill record.

    Spill records are not JSON items (they carry pickled partial states,
    sequence tags, composite sort keys), so the item-model sizer cannot
    price them; this generic walk is only used to pack run-file frames,
    where a rough estimate is enough.
    """
    if isinstance(record, (list, tuple)):
        return 16 + sum(estimate_record_bytes(value) for value in record)
    if isinstance(record, dict):
        return 16 + sum(
            estimate_record_bytes(key) + estimate_record_bytes(value)
            for key, value in record.items()
        )
    if isinstance(record, str):
        return 49 + len(record)
    if isinstance(record, (bytes, bytearray)):
        return 33 + len(record)
    return 32


def stable_bucket(key, buckets: int, salt: int = 0) -> int:
    """Deterministic bucket index for a canonical key.

    ``hash()`` is salted per process (``PYTHONHASHSEED``), so it cannot
    partition work whose sides are hashed in *different* worker
    processes; CRC32 over the canonical repr is stable everywhere.  The
    *salt* decorrelates recursion levels — a bucket that overflows is
    re-split by a different hash, so its keys actually spread.
    """
    payload = repr(key).encode("utf-8")
    if salt:
        payload = b"%d|" % salt + payload
    return zlib.crc32(payload) % buckets


#: monotonic per-process counter feeding :func:`new_query_scope`
_QUERY_SCOPE_SEQ = itertools.count(1)


def new_query_scope() -> str:
    """A spill scope unique to one query execution.

    Combines the coordinator pid, a monotonic per-process counter, and
    a random salt, so two queries — in the same process, in different
    processes, or racing across machines onto one shared spill root —
    can never claim the same scope directory.  Within the query the
    scope is fixed: it pickles into every work unit, so worker-side
    managers land under the same per-query root as coordinator-side
    ones.
    """
    return f"{os.getpid():x}-{next(_QUERY_SCOPE_SEQ):x}-{uuid.uuid4().hex[:8]}"


@dataclass(frozen=True)
class SpillConfig:
    """How spilling operators write and recurse.

    Picklable (it rides inside process-pool work units).  ``directory``
    is the *root* under which each attempt makes its own temp dir;
    ``None`` consults ``REPRO_SPILL_DIR`` then the system temp dir
    (``REPRO_SPILL_DIR=""`` explicitly pins the system temp dir — see
    :mod:`repro.envutil`).

    ``scope`` namespaces every attempt directory under one per-query
    subdirectory (``repro-spill-q<scope>``).  The executor stamps a
    fresh :func:`new_query_scope` on each query, so two concurrent
    queries spilling the same partition index can never collide — and
    cleanup of one query's directory tree cannot delete the other's run
    files.  Within a query the scope is deterministic (it is part of
    the pickled config), while attempt directories inside it stay
    ``mkdtemp``-unique because straggler speculation can run duplicate
    attempts of the *same* partition concurrently.
    """

    directory: str | None = None
    frame_bytes: int = DEFAULT_FRAME_BYTES
    fanout: int = 8
    max_recursion: int = 6
    scope: str | None = None

    def root_directory(self) -> str:
        if self.directory is not None:
            return self.directory
        value = env_setting(SPILL_DIR_ENV_VAR)
        if value:
            return value
        return tempfile.gettempdir()

    def scoped(self) -> "SpillConfig":
        """This config pinned to a fresh per-query scope (idempotent)."""
        if self.scope is not None:
            return self
        return replace(self, scope=new_query_scope())

    def scope_directory(self) -> str | None:
        """The per-query directory all attempt dirs nest under (or None)."""
        if self.scope is None:
            return None
        return os.path.join(self.root_directory(), f"repro-spill-q{self.scope}")


def resolve_spill_config(spill_dir=None) -> SpillConfig:
    """Normalize a ``spill_dir`` argument into a :class:`SpillConfig`."""
    if isinstance(spill_dir, SpillConfig):
        return spill_dir
    return SpillConfig(directory=spill_dir)


# ---------------------------------------------------------------------------
# Run files
# ---------------------------------------------------------------------------


class RunHandle:
    """One finished run file: iterable, deletable, counted."""

    __slots__ = ("path", "records", "byte_size", "_manager")

    def __init__(self, path: str, records: int, byte_size: int, manager):
        self.path = path
        self.records = records
        self.byte_size = byte_size
        self._manager = manager

    def __iter__(self) -> Iterator:
        try:
            with open(self.path, "rb") as handle:
                while True:
                    try:
                        batch = pickle.load(handle)
                    except EOFError:
                        break
                    for wrapped in batch:
                        yield wrapped["r"][0]
        except OSError as error:
            raise SpillError(
                f"cannot read spill run {self.path!r}: {error}"
            ) from error

    def delete(self) -> None:
        """Remove the run file early (close() cleans up leftovers anyway)."""
        try:
            os.unlink(self.path)
        except OSError:
            pass


class RunWriter:
    """Writes records to a run file in frame-sized batches.

    Records are wrapped as one-binding tuples and packed through the
    existing :class:`~repro.hyracks.frames.FrameWriter`; each completed
    frame's tuple list is pickled to the file as one batch.  The fault
    hook fires before every disk write, which is where
    ``FaultPlan.fail_spill`` injects.
    """

    __slots__ = ("_path", "_file", "_frames", "_manager", "_records", "closed")

    def __init__(self, path: str, manager: "SpillManager"):
        self._path = path
        self._manager = manager
        self._records = 0
        self.closed = False
        try:
            self._file = open(path, "wb")
        except OSError as error:
            raise SpillError(
                f"cannot create spill run {path!r}: {error}"
            ) from error
        self._frames = FrameWriter(
            frame_bytes=manager.config.frame_bytes,
            allow_big_objects=True,
            on_frame=self._write_frame,
        )

    def _write_frame(self, frame) -> None:
        self._manager.check_fault()
        try:
            pickle.dump(frame.tuples, self._file)
        except OSError as error:
            raise SpillError(
                f"cannot write spill run {self._path!r}: {error}"
            ) from error

    def write(self, record) -> None:
        self._records += 1
        self._frames.write(
            {"r": [record]}, n_bytes=estimate_record_bytes(record)
        )

    def finish(self) -> RunHandle:
        """Flush, close, and hand back a readable run handle."""
        self._frames.flush()
        try:
            self._file.close()
        except OSError as error:
            raise SpillError(
                f"cannot finish spill run {self._path!r}: {error}"
            ) from error
        self.closed = True
        byte_size = os.path.getsize(self._path)
        self._manager.bytes_spilled += byte_size
        return RunHandle(self._path, self._records, byte_size, self._manager)

    def abort(self) -> None:
        """Close without finishing (cleanup path)."""
        if not self.closed:
            try:
                self._file.close()
            except OSError:
                pass
            self.closed = True


class SpillManager:
    """Owns one execution attempt's spill directory and counters.

    The directory is created lazily on the first run file and removed
    wholesale by :meth:`close` — which the executor and the partition
    backends call in ``finally`` blocks, so cancellation, timeouts,
    injected faults, and plain bugs all leave zero temp files behind.
    """

    def __init__(
        self,
        config: SpillConfig,
        partition: int | None = None,
        fault_hook: Callable[[], None] | None = None,
    ):
        self.config = config
        self.partition = partition
        self.fault_hook = fault_hook
        self.events = 0
        self.run_files = 0
        self.bytes_spilled = 0
        self.max_recursion_depth = 0
        self._directory: str | None = None
        self._writers: list[RunWriter] = []
        self.closed = False

    # -- bookkeeping ------------------------------------------------------------

    def check_fault(self) -> None:
        """Fire the resilience fault hook (may raise an injected fault)."""
        if self.fault_hook is not None:
            self.fault_hook()

    def note_event(self) -> None:
        """Count one spill decision (an operator overflowing to disk)."""
        self.events += 1

    def note_recursion(self, depth: int) -> None:
        if depth > self.max_recursion_depth:
            self.max_recursion_depth = depth

    @property
    def directory(self) -> str | None:
        return self._directory

    # -- run files --------------------------------------------------------------

    def new_run(self, label: str = "run") -> RunWriter:
        if self.closed:
            raise SpillError("spill manager is closed")
        if self._directory is None:
            root = self.config.scope_directory()
            if root is None:
                root = self.config.root_directory()
            os.makedirs(root, exist_ok=True)
            prefix = (
                f"repro-spill-p{self.partition}-"
                if self.partition is not None
                else "repro-spill-global-"
            )
            self._directory = tempfile.mkdtemp(prefix=prefix, dir=root)
        self.run_files += 1
        path = os.path.join(
            self._directory, f"run-{self.run_files:06d}-{label}.frames"
        )
        writer = RunWriter(path, self)
        self._writers.append(writer)
        return writer

    def close(self) -> None:
        """Release everything: open writers, run files, the directory."""
        if self.closed:
            return
        self.closed = True
        for writer in self._writers:
            writer.abort()
        self._writers.clear()
        if self._directory is not None:
            shutil.rmtree(self._directory, ignore_errors=True)
            self._directory = None

    def fold_stats(self, stats) -> None:
        """Fold this manager's counters into an ``ExecutionStats``."""
        stats.spill_events += self.events
        stats.spill_run_files += self.run_files
        stats.spill_bytes += self.bytes_spilled
        if self.max_recursion_depth > stats.spill_recursion_depth:
            stats.spill_recursion_depth = self.max_recursion_depth

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


# ---------------------------------------------------------------------------
# Spilled materialization (nested-loop build sides, sequence aggregates)
# ---------------------------------------------------------------------------


class SpilledSequence:
    """A materialized record buffer that overflows to run files.

    Appends charge the tracker; when a charge is declined the in-memory
    buffer is flushed to a run file and the charge retried (forced for a
    single record larger than the whole budget).  Iteration replays the
    runs in write order followed by the in-memory tail, so record order
    is exactly append order — byte-identical to a plain list.
    """

    def __init__(self, ctx, label: str = "materialize", op=None):
        self._ctx = ctx
        self._label = label
        self._op = op
        self._runs: list[RunHandle] = []
        self._buffer: list = []
        self._charged = 0
        self.records = 0

    def append(self, record, n_bytes: int) -> None:
        ctx = self._ctx
        self.records += 1
        if ctx.memory is None:
            self._buffer.append(record)
            return
        if ctx.memory.try_allocate(n_bytes):
            self._charged += n_bytes
            self._buffer.append(record)
            return
        if ctx.spill is None or not self._buffer:
            # No spill path (or nothing to shed): keep the old raising
            # behaviour / force the irreducible single record.
            if ctx.spill is None:
                ctx.memory.allocate(n_bytes)  # raises
                self._charged += n_bytes
                self._buffer.append(record)
                return
            ctx.memory.force_allocate(n_bytes)
            self._charged += n_bytes
            self._buffer.append(record)
            return
        self._flush()
        if ctx.memory.try_allocate(n_bytes):
            self._charged += n_bytes
        else:
            ctx.memory.force_allocate(n_bytes)
            self._charged += n_bytes
        self._buffer.append(record)

    def _flush(self) -> None:
        ctx = self._ctx
        spill = ctx.spill
        spill.note_event()
        if ctx.profile is not None and self._op is not None:
            ctx.profile.add(self._op, "spill_events", 1)
            ctx.profile.add(self._op, "spill_run_files", 1)
        writer = spill.new_run(self._label)
        for record in self._buffer:
            writer.write(record)
        self._runs.append(writer.finish())
        self._buffer = []
        ctx.memory.release(self._charged)
        self._charged = 0

    @property
    def spilled(self) -> bool:
        return bool(self._runs)

    def __len__(self) -> int:
        return self.records

    def __iter__(self) -> Iterator:
        for run in self._runs:
            yield from run
        yield from self._buffer

    def close(self) -> None:
        """Release the remaining charge and the run files."""
        if self._charged:
            self._ctx.memory.release(self._charged)
            self._charged = 0
        for run in self._runs:
            run.delete()
        self._runs = []
        self._buffer = []


# ---------------------------------------------------------------------------
# External hash GROUP-BY (partition-and-recurse)
# ---------------------------------------------------------------------------


def fold_group_table(key_exprs, specs, source: Iterable[Tuple], ctx, op=None):
    """Fold *source* into ``key -> (key_values, accumulators)``.

    The returned dict's insertion order is **first-seen key order** —
    with or without spilling — which is what keeps results byte-identical
    across spill on/off and across execution backends (the coordinator
    combines partition tables in partition order, relying on each
    table's deterministic order).

    In-memory behaviour is unchanged: one ``GROUP_ENTRY_BYTES`` charge
    per distinct key, raising when no spill manager is configured.  With
    a spill manager, a declined charge flushes the table's partial
    states to salted key-bucket run files and recurses per bucket.
    """
    from repro.hyracks.aggregates import make_accumulators

    limits = ctx.limits
    spill = ctx.spill
    memory = ctx.memory
    table: dict = {}
    writers: list[RunWriter] | None = None
    fanout = spill.config.fanout if spill is not None else 0
    seq = 0

    def flush_to_buckets() -> None:
        nonlocal writers, table
        spill.note_event()
        if ctx.profile is not None and op is not None:
            ctx.profile.add(op, "spill_events", 1)
        if writers is None:
            writers = [spill.new_run(f"group-b{b}") for b in range(fanout)]
            if ctx.profile is not None and op is not None:
                ctx.profile.add(op, "spill_run_files", fanout)
        for key, state in table.items():
            partials = [acc.partial() for acc in state[1]]
            writers[stable_bucket(key, fanout)].write(
                (key, state[0], partials, state[2])
            )
        for state in table.values():
            for acc in state[1]:
                release = getattr(acc, "release_charges", None)
                if release is not None:
                    release(ctx)
        if memory is not None:
            memory.release(GROUP_ENTRY_BYTES * len(table))
        table = {}

    for tup in source:
        if limits is not None:
            limits.checkpoint()
        key_values = [expr.evaluate(tup, ctx) for expr in key_exprs]
        key = tuple(canonical_key(v) for v in key_values)
        state = table.get(key)
        if state is None:
            if memory is not None:
                if spill is None:
                    memory.allocate(GROUP_ENTRY_BYTES)  # raises on overflow
                elif not memory.try_allocate(GROUP_ENTRY_BYTES):
                    if table:
                        flush_to_buckets()
                    if not memory.try_allocate(GROUP_ENTRY_BYTES):
                        memory.force_allocate(GROUP_ENTRY_BYTES)
            state = (key_values, make_accumulators(specs), seq)
            table[key] = state
        for accumulator in state[1]:
            accumulator.add(tup, ctx)
        seq += 1

    if writers is None:
        # Never spilled: the dict is already in first-seen order.
        return {key: (kv, accs) for key, (kv, accs, _) in table.items()}

    # Spilled: flush the remainder and merge the buckets.
    if table:
        flush_to_buckets()
    handles = [writer.finish() for writer in writers]
    entries: list = []  # (first_seq, key, key_values, accumulators)
    for handle in handles:
        _merge_group_bucket(handle, specs, ctx, op, 1, entries)
        handle.delete()
    entries.sort(key=lambda entry: entry[0])
    merged: dict = {}
    for _, key, key_values, accumulators in entries:
        merged[key] = (key_values, accumulators)
    return merged


def _merge_group_bucket(handle, specs, ctx, op, depth: int, entries: list):
    """Absorb one bucket's partial records; recurse when it overflows."""
    from repro.hyracks.aggregates import make_accumulators

    limits = ctx.limits
    spill = ctx.spill
    memory = ctx.memory
    fanout = spill.config.fanout
    spill.note_recursion(depth)
    table: dict = {}
    writers: list[RunWriter] | None = None

    def split() -> None:
        nonlocal writers, table
        spill.note_event()
        if ctx.profile is not None and op is not None:
            ctx.profile.add(op, "spill_events", 1)
            ctx.profile.add(op, "spill_run_files", fanout)
        writers = [
            spill.new_run(f"group-d{depth}-b{b}") for b in range(fanout)
        ]
        for key, state in table.items():
            partials = [acc.partial() for acc in state[1]]
            writers[stable_bucket(key, fanout, salt=depth)].write(
                (key, state[0], partials, state[2])
            )
        for state in table.values():
            for acc in state[1]:
                release = getattr(acc, "release_charges", None)
                if release is not None:
                    release(ctx)
        if memory is not None:
            memory.release(GROUP_ENTRY_BYTES * len(table))
        table = {}

    for record in handle:
        if limits is not None:
            limits.checkpoint()
        key, key_values, partials, first_seq = record
        if writers is not None:
            writers[stable_bucket(key, fanout, salt=depth)].write(record)
            continue
        state = table.get(key)
        if state is None:
            if memory is not None and not memory.try_allocate(
                GROUP_ENTRY_BYTES
            ):
                if table and depth < spill.config.max_recursion:
                    split()
                    writers[stable_bucket(key, fanout, salt=depth)].write(
                        record
                    )
                    continue
                memory.force_allocate(GROUP_ENTRY_BYTES)
            state = (key_values, make_accumulators(specs), first_seq)
            table[key] = state
        elif first_seq < state[2]:
            state = (state[0], state[1], first_seq)
            table[key] = state
        for accumulator, partial in zip(state[1], partials):
            accumulator.absorb(partial)

    if writers is not None:
        sub_handles = [writer.finish() for writer in writers]
        for sub in sub_handles:
            _merge_group_bucket(sub, specs, ctx, op, depth + 1, entries)
            sub.delete()
        return

    # Entries stay charged (GROUP_ENTRY_BYTES each): the merged table is
    # in memory, and the caller releases it after emission — the same
    # contract as the never-spilled path.
    for key, (key_values, accumulators, first_seq) in table.items():
        entries.append((first_seq, key, key_values, accumulators))


def fold_group_lists(key_exprs, source: Iterable[Tuple], ctx, finalize, op=None):
    """Group raw tuples and *finalize* each group, bounded-memory.

    The general GROUP-BY path (nested plans other than a plain
    aggregate) materializes each group's member tuples.  This helper
    keeps that contract but sheds member lists to salted key-bucket run
    files when a charge is declined; each group's members are re-read in
    arrival order, finalized, and the outputs re-emitted in first-seen
    group order.  All memory charged here is released before returning.

    Returns ``(outputs, group_count)``.
    """
    limits = ctx.limits
    spill = ctx.spill
    memory = ctx.memory
    table: dict = {}  # key -> [key_values, tuples, first_seq, charged]
    writers: list[RunWriter] | None = None
    fanout = spill.config.fanout if spill is not None else 0
    seq = 0

    def flush_to_buckets() -> None:
        nonlocal writers, table
        spill.note_event()
        if ctx.profile is not None and op is not None:
            ctx.profile.add(op, "spill_events", 1)
        if writers is None:
            writers = [spill.new_run(f"rawgroup-b{b}") for b in range(fanout)]
            if ctx.profile is not None and op is not None:
                ctx.profile.add(op, "spill_run_files", fanout)
        for key, state in table.items():
            writers[stable_bucket(key, fanout)].write(
                (key, state[0], state[1], state[2])
            )
            if memory is not None and state[3]:
                memory.release(state[3])
        table = {}

    for tup in source:
        if limits is not None:
            limits.checkpoint()
        key_values = [expr.evaluate(tup, ctx) for expr in key_exprs]
        key = tuple(canonical_key(v) for v in key_values)
        state = table.get(key)
        if state is None:
            state = [key_values, [], seq, 0]
            table[key] = state
        if memory is not None:
            n_bytes = sizeof_tuple(tup)
            if spill is None:
                memory.allocate(n_bytes)  # raises on overflow
            elif not memory.try_allocate(n_bytes):
                flush_to_buckets()
                state = [key_values, [], seq, 0]
                table[key] = state
                if not memory.try_allocate(n_bytes):
                    memory.force_allocate(n_bytes)
            state[3] += n_bytes
        state[1].append(tup)
        seq += 1

    if writers is None:
        outputs = [
            finalize(key_values, tuples)
            for key_values, tuples, _, _ in table.values()
        ]
        count = len(table)
        if memory is not None:
            memory.release(sum(state[3] for state in table.values()))
        return outputs, count

    if table:
        flush_to_buckets()
    handles = [writer.finish() for writer in writers]
    tagged: list = []  # (first_seq, finalized_output)
    count = 0
    for handle in handles:
        count += _merge_raw_bucket(handle, ctx, finalize, op, 1, tagged)
        handle.delete()
    tagged.sort(key=lambda entry: entry[0])
    return [output for _, output in tagged], count


def _merge_raw_bucket(handle, ctx, finalize, op, depth: int, tagged: list) -> int:
    """Re-group one raw-tuple bucket; recurse when it overflows."""
    limits = ctx.limits
    spill = ctx.spill
    memory = ctx.memory
    fanout = spill.config.fanout
    spill.note_recursion(depth)
    table: dict = {}  # key -> [key_values, tuples, first_seq, charged]
    writers: list[RunWriter] | None = None

    def split() -> None:
        nonlocal writers, table
        spill.note_event()
        if ctx.profile is not None and op is not None:
            ctx.profile.add(op, "spill_events", 1)
            ctx.profile.add(op, "spill_run_files", fanout)
        writers = [
            spill.new_run(f"rawgroup-d{depth}-b{b}") for b in range(fanout)
        ]
        for key, state in table.items():
            writers[stable_bucket(key, fanout, salt=depth)].write(
                (key, state[0], state[1], state[2])
            )
            if memory is not None and state[3]:
                memory.release(state[3])
        table = {}

    for record in handle:
        if limits is not None:
            limits.checkpoint()
        key, key_values, tuples, first_seq = record
        if writers is not None:
            writers[stable_bucket(key, fanout, salt=depth)].write(record)
            continue
        n_bytes = sum(sizeof_tuple(t) for t in tuples)
        if memory is not None and not memory.try_allocate(n_bytes):
            if table and depth < spill.config.max_recursion:
                split()
                writers[stable_bucket(key, fanout, salt=depth)].write(record)
                continue
            memory.force_allocate(n_bytes)
        state = table.get(key)
        if state is None:
            table[key] = [key_values, list(tuples), first_seq, n_bytes]
        else:
            state[1].extend(tuples)
            if first_seq < state[2]:
                state[2] = first_seq
            state[3] += n_bytes

    if writers is not None:
        sub_handles = [writer.finish() for writer in writers]
        count = 0
        for sub in sub_handles:
            count += _merge_raw_bucket(sub, ctx, finalize, op, depth + 1, tagged)
            sub.delete()
        return count

    for key_values, tuples, first_seq, charged in table.values():
        tagged.append((first_seq, finalize(key_values, tuples)))
        if memory is not None and charged:
            memory.release(charged)
    return len(table)


# ---------------------------------------------------------------------------
# Grace hash join
# ---------------------------------------------------------------------------


def grace_join_overflow(
    build_table: dict,
    build_charged: int,
    build_rest: Iterator[Tuple],
    build_keys,
    probe_stream: Iterable[Tuple],
    probe_keys,
    residual,
    ctx,
    op=None,
) -> Iterator[Tuple]:
    """Finish a hash join whose build side overflowed memory.

    Called by :func:`~repro.hyracks.operators.hash_join` with the
    partially-built table, the not-yet-consumed remainder of the build
    stream, and the untouched probe stream.  Both sides are partitioned
    into key-bucket run files; each bucket joins locally (recursing with
    a salted hash when a bucket itself overflows).  Probe tuples carry
    their arrival sequence number and the joined output is re-emitted in
    probe order, so the result is byte-identical to the in-memory join.
    """
    from repro.hyracks.operators import join_key

    limits = ctx.limits
    spill = ctx.spill
    memory = ctx.memory
    fanout = spill.config.fanout
    spill.note_event()
    if ctx.profile is not None and op is not None:
        ctx.profile.add(op, "spill_events", 1)
        ctx.profile.add(op, "spill_run_files", 2 * fanout)

    build_writers = [spill.new_run(f"join-build-b{b}") for b in range(fanout)]
    for key, rows in build_table.items():
        bucket = stable_bucket(key, fanout)
        for tup in rows:
            build_writers[bucket].write((key, tup))
    if memory is not None and build_charged:
        memory.release(build_charged)
    build_table.clear()
    for tup in build_rest:
        if limits is not None:
            limits.checkpoint()
        key = join_key(tup, build_keys, ctx, op=op)
        if key is None:
            continue
        build_writers[stable_bucket(key, fanout)].write((key, tup))
    build_handles = [writer.finish() for writer in build_writers]

    probe_writers = [spill.new_run(f"join-probe-b{b}") for b in range(fanout)]
    seq = 0
    for tup in probe_stream:
        if limits is not None:
            limits.checkpoint()
        key = join_key(tup, probe_keys, ctx, op=op)
        if key is None:
            seq += 1
            continue
        probe_writers[stable_bucket(key, fanout)].write((seq, key, tup))
        seq += 1
    probe_handles = [writer.finish() for writer in probe_writers]

    out: list = []  # (probe_seq, joined_tuple)
    for build_handle, probe_handle in zip(build_handles, probe_handles):
        _join_bucket(build_handle, probe_handle, residual, ctx, op, 1, out)
        build_handle.delete()
        probe_handle.delete()
    out.sort(key=lambda pair: pair[0])
    for _, joined in out:
        yield joined


def _join_bucket(build_handle, probe_handle, residual, ctx, op, depth, out):
    """Join one bucket pair; recurse with a salted hash on overflow."""
    from repro.algebra.expressions import effective_boolean_value

    limits = ctx.limits
    spill = ctx.spill
    memory = ctx.memory
    fanout = spill.config.fanout
    spill.note_recursion(depth)
    table: dict = {}
    charged = 0
    writers: list[RunWriter] | None = None

    for key, tup in build_handle:
        if limits is not None:
            limits.checkpoint()
        if writers is not None:
            writers[stable_bucket(key, fanout, salt=depth)].write((key, tup))
            continue
        n_bytes = sizeof_tuple(tup)
        if memory is not None and not memory.try_allocate(n_bytes):
            if table and depth < spill.config.max_recursion:
                spill.note_event()
                if ctx.profile is not None and op is not None:
                    ctx.profile.add(op, "spill_events", 1)
                    ctx.profile.add(op, "spill_run_files", 2 * fanout)
                writers = [
                    spill.new_run(f"join-build-d{depth}-b{b}")
                    for b in range(fanout)
                ]
                for flush_key, rows in table.items():
                    bucket = stable_bucket(flush_key, fanout, salt=depth)
                    for row in rows:
                        writers[bucket].write((flush_key, row))
                if memory is not None and charged:
                    memory.release(charged)
                    charged = 0
                table = {}
                writers[stable_bucket(key, fanout, salt=depth)].write(
                    (key, tup)
                )
                continue
            memory.force_allocate(n_bytes)
        charged += n_bytes
        table.setdefault(key, []).append(tup)

    if writers is not None:
        sub_build = [writer.finish() for writer in writers]
        probe_writers = [
            spill.new_run(f"join-probe-d{depth}-b{b}") for b in range(fanout)
        ]
        for seq, key, tup in probe_handle:
            if limits is not None:
                limits.checkpoint()
            probe_writers[stable_bucket(key, fanout, salt=depth)].write(
                (seq, key, tup)
            )
        sub_probe = [writer.finish() for writer in probe_writers]
        for build_sub, probe_sub in zip(sub_build, sub_probe):
            _join_bucket(build_sub, probe_sub, residual, ctx, op, depth + 1, out)
            build_sub.delete()
            probe_sub.delete()
        return

    for seq, key, tup in probe_handle:
        if limits is not None:
            limits.checkpoint()
        for match in table.get(key, ()):
            joined = merge_tuples(tup, match)
            if all(
                effective_boolean_value(conjunct.evaluate(joined, ctx))
                for conjunct in residual
            ):
                out.append((seq, joined))
    if memory is not None and charged:
        memory.release(charged)


# ---------------------------------------------------------------------------
# External merge sort
# ---------------------------------------------------------------------------


class _OrderKey:
    """One sort-spec component: canonical key with direction baked in."""

    __slots__ = ("value", "descending")

    def __init__(self, value, descending: bool):
        self.value = value
        self.descending = descending

    def __lt__(self, other: "_OrderKey") -> bool:
        if self.descending:
            return other.value < self.value
        return self.value < other.value

    def __eq__(self, other) -> bool:
        return self.value == other.value

    def __hash__(self):  # pragma: no cover - keys are compared, not hashed
        return hash(self.value)

    def __reduce__(self):
        return (_OrderKey, (self.value, self.descending))


def sort_key_for(specs, tup: Tuple, ctx, seq: int) -> tuple:
    """Composite comparable key for one tuple under *specs*.

    Lexicographic comparison over per-spec :class:`_OrderKey` components
    with the arrival sequence as final tie-break reproduces exactly what
    the in-memory path computes with its stable least-significant-first
    sort passes.
    """
    return tuple(
        _OrderKey(canonical_key(expr.evaluate(tup, ctx)), descending)
        for expr, descending in specs
    ) + (seq,)


def external_sort(specs, source: Iterable[Tuple], ctx, op=None) -> Iterator[Tuple]:
    """Sort *source* by *specs* under the memory budget.

    Tuples are charged as they buffer; a declined charge sorts the
    buffer into a run file.  Runs (plus the in-memory tail) merge with
    ``heapq.merge`` over composite keys, streaming the result without
    ever re-materializing the whole input.
    """
    limits = ctx.limits
    spill = ctx.spill
    memory = ctx.memory
    runs: list[RunHandle] = []
    buffer: list = []  # (composite_key, tuple)
    charged = 0
    seq = 0

    def flush_run() -> None:
        nonlocal buffer, charged
        spill.note_event()
        if ctx.profile is not None and op is not None:
            ctx.profile.add(op, "spill_events", 1)
            ctx.profile.add(op, "spill_run_files", 1)
        buffer.sort(key=lambda pair: pair[0])
        writer = spill.new_run("sort")
        for pair in buffer:
            writer.write(pair)
        runs.append(writer.finish())
        buffer = []
        if memory is not None and charged:
            memory.release(charged)
            charged = 0

    try:
        for tup in source:
            if limits is not None:
                limits.checkpoint()
            key = sort_key_for(specs, tup, ctx, seq)
            seq += 1
            n_bytes = sizeof_tuple(tup)
            if memory is not None:
                if spill is None:
                    memory.allocate(n_bytes)  # raises on overflow
                elif not memory.try_allocate(n_bytes):
                    if buffer:
                        flush_run()
                    if not memory.try_allocate(n_bytes):
                        memory.force_allocate(n_bytes)
            charged += n_bytes
            buffer.append((key, tup))

        buffer.sort(key=lambda pair: pair[0])
        if not runs:
            for _, tup in buffer:
                yield tup
            return
        streams = [iter(run) for run in runs] + [iter(buffer)]
        for _, tup in heapq.merge(*streams, key=lambda pair: pair[0]):
            if limits is not None:
                limits.checkpoint()
            yield tup
    finally:
        if memory is not None and charged:
            memory.release(charged)
        for run in runs:
            run.delete()
