"""Memory accounting for the runtime.

Materializing operators and expressions charge a :class:`MemoryTracker`;
the tracker records the high-water mark (Table 3 and Figure 18b of the
paper compare exactly this) and can enforce a budget, which is how the
SparkSQL baseline reproduces its "cannot load inputs larger than memory"
behaviour.

Two charging disciplines coexist:

- :meth:`MemoryTracker.allocate` raises
  :class:`~repro.errors.MemoryBudgetExceededError` on overflow — the
  behaviour non-spillable paths (expression materialization, the SQL
  baseline) keep;
- :meth:`MemoryTracker.try_allocate` *declines* instead of raising, so
  spilling operators can react by degrading to disk
  (:mod:`repro.hyracks.spill`); :meth:`MemoryTracker.force_allocate`
  records an overdraft for the irreducible minimum a spilling operator
  cannot shed (e.g. one group entry under a budget smaller than one
  entry).

Every work unit builds its own tracker (one per partition attempt), so
trackers are never shared across the thread backend's workers; the
coordinator merges per-partition peaks in partition order.
"""

from __future__ import annotations

from repro.errors import MemoryBudgetExceededError


class MemoryTracker:
    """Tracks allocated bytes with a peak and an optional hard budget."""

    __slots__ = ("used", "peak", "budget", "context", "underflow_bytes",
                 "overdraft_bytes")

    def __init__(self, budget: int | None = None, context: str = ""):
        self.used = 0
        self.peak = 0
        self.budget = budget
        self.context = context
        #: bytes released beyond what was allocated (accounting bugs are
        #: flagged here instead of being silently clamped away)
        self.underflow_bytes = 0
        #: bytes force-allocated past the budget (spill overdraft)
        self.overdraft_bytes = 0

    def allocate(self, n_bytes: int) -> None:
        """Charge *n_bytes*; raises when a budget would be exceeded."""
        self.used += n_bytes
        if self.used > self.peak:
            self.peak = self.used
        if self.budget is not None and self.used > self.budget:
            raise MemoryBudgetExceededError(self.used, self.budget, self.context)

    def try_allocate(self, n_bytes: int) -> bool:
        """Charge *n_bytes* if the budget allows; decline otherwise.

        Returns True when the charge was applied.  A declined charge
        leaves the tracker untouched — the caller is expected to spill
        and retry (or :meth:`force_allocate` the irreducible remainder).
        """
        if self.budget is not None and self.used + n_bytes > self.budget:
            return False
        self.used += n_bytes
        if self.used > self.peak:
            self.peak = self.used
        return True

    def force_allocate(self, n_bytes: int) -> None:
        """Charge *n_bytes* unconditionally, recording any overdraft.

        Used by spilling operators for state that cannot shrink further
        (a single hash-table entry, one sort record); the overdraft is
        visible on ``overdraft_bytes`` so tests and benchmarks can see
        how far past the budget an operator was forced.
        """
        self.used += n_bytes
        if self.used > self.peak:
            self.peak = self.used
        if self.budget is not None and self.used > self.budget:
            self.overdraft_bytes = max(
                self.overdraft_bytes, self.used - self.budget
            )

    def release(self, n_bytes: int) -> None:
        """Return *n_bytes* to the pool; flags underflow instead of hiding it."""
        if n_bytes > self.used:
            self.underflow_bytes += n_bytes - self.used
            self.used = 0
            return
        self.used -= n_bytes

    @property
    def has_underflow(self) -> bool:
        """True when more bytes were released than allocated."""
        return self.underflow_bytes > 0

    def reset(self) -> None:
        """Zero the counters (peak included)."""
        self.used = 0
        self.peak = 0
        self.underflow_bytes = 0
        self.overdraft_bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        budget = f", budget={self.budget}" if self.budget is not None else ""
        flags = ""
        if self.underflow_bytes:
            flags += f", underflow={self.underflow_bytes}"
        if self.overdraft_bytes:
            flags += f", overdraft={self.overdraft_bytes}"
        return f"MemoryTracker(used={self.used}, peak={self.peak}{budget}{flags})"
