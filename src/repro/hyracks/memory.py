"""Memory accounting for the runtime.

Materializing operators and expressions charge a :class:`MemoryTracker`;
the tracker records the high-water mark (Table 3 and Figure 18b of the
paper compare exactly this) and can enforce a budget, which is how the
SparkSQL baseline reproduces its "cannot load inputs larger than memory"
behaviour.
"""

from __future__ import annotations

from repro.errors import MemoryBudgetExceededError


class MemoryTracker:
    """Tracks allocated bytes with a peak and an optional hard budget."""

    __slots__ = ("used", "peak", "budget", "context")

    def __init__(self, budget: int | None = None, context: str = ""):
        self.used = 0
        self.peak = 0
        self.budget = budget
        self.context = context

    def allocate(self, n_bytes: int) -> None:
        """Charge *n_bytes*; raises when a budget would be exceeded."""
        self.used += n_bytes
        if self.used > self.peak:
            self.peak = self.used
        if self.budget is not None and self.used > self.budget:
            raise MemoryBudgetExceededError(self.used, self.budget, self.context)

    def release(self, n_bytes: int) -> None:
        """Return *n_bytes* to the pool."""
        self.used = max(0, self.used - n_bytes)

    def reset(self) -> None:
        """Zero the counters (peak included)."""
        self.used = 0
        self.peak = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        budget = f", budget={self.budget}" if self.budget is not None else ""
        return f"MemoryTracker(used={self.used}, peak={self.peak}{budget})"
