"""Query deadlines and cooperative cancellation.

A query can carry an :class:`ExecutionLimits`: a :class:`QueryDeadline`
(resolved to an absolute monotonic instant when the query starts) and/or
a :class:`CancellationToken`.  The physical operators and the partition
backends call :meth:`ExecutionLimits.checkpoint` at frame boundaries —
the check is strided (every :data:`CHECK_STRIDE` tuples) so the hot scan
loop pays one integer decrement per tuple.

Both limit violations raise picklable errors
(:class:`~repro.errors.QueryTimeoutError`,
:class:`~repro.errors.QueryCancelledError`) that are **query-global**:
the executor never retries or skips them, and the unwind releases every
spill file and memory tracker on the way out.

Cross-process cancellation: a :class:`CancellationToken` built with a
``flag_path`` signals through the filesystem, so a token cancelled on
the coordinator is observed by ``ProcessBackend`` workers that were
forked before the cancel.  Without a flag path the token still pickles
(carrying its cancelled-at-pickle-time snapshot), and workers rely on
the deadline — which needs no IPC because ``time.monotonic`` is
system-wide on the platforms the process backend supports.
"""

from __future__ import annotations

import os
import threading
import time

from repro.errors import QueryCancelledError, QueryTimeoutError

#: environment variable consulted for a default query deadline (seconds)
DEADLINE_ENV_VAR = "REPRO_DEADLINE"

#: tuples between limit checks — one frame's worth of small tuples
CHECK_STRIDE = 128


def resolve_deadline_seconds(deadline_seconds: float | None) -> float | None:
    """Normalize a deadline argument, consulting ``REPRO_DEADLINE``.

    ``None`` reads the environment variable (empty/unset/``0`` means no
    deadline — the :mod:`repro.envutil` rule); a non-positive explicit
    value is rejected.
    """
    if deadline_seconds is None:
        from repro.envutil import env_setting

        value = env_setting(DEADLINE_ENV_VAR, "")
        if not value or value == "0":
            return None
        deadline_seconds = float(value)
    if deadline_seconds <= 0:
        raise ValueError(
            f"deadline_seconds must be positive, got {deadline_seconds!r}"
        )
    return deadline_seconds


class QueryDeadline:
    """An absolute deadline for one query execution.

    Built from a relative budget via :meth:`start`, which pins the
    monotonic expiry instant; picklable, so process-pool work units
    carry the *same* absolute deadline as the coordinator.
    """

    __slots__ = ("deadline_seconds", "expires_at", "started_at")

    def __init__(
        self,
        deadline_seconds: float,
        started_at: float | None = None,
    ):
        if deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be positive, got {deadline_seconds!r}"
            )
        self.deadline_seconds = deadline_seconds
        self.started_at = (
            started_at if started_at is not None else time.monotonic()
        )
        self.expires_at = self.started_at + deadline_seconds

    @classmethod
    def start(cls, deadline_seconds: float) -> "QueryDeadline":
        """A deadline starting now."""
        return cls(deadline_seconds)

    def remaining(self) -> float:
        """Seconds left before expiry (negative once past it)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self) -> None:
        """Raise :class:`~repro.errors.QueryTimeoutError` once expired."""
        now = time.monotonic()
        if now >= self.expires_at:
            raise QueryTimeoutError(
                self.deadline_seconds, now - self.started_at
            )

    def __reduce__(self):
        return (
            QueryDeadline,
            (self.deadline_seconds, self.started_at),
        )


class CancellationToken:
    """Cooperative cancellation signal.

    ``cancel()`` may be called from any thread; execution observes it at
    the next checkpoint.  With a ``flag_path`` the cancel also touches a
    filesystem flag, which is how process-pool workers (separate
    processes, separate memory) observe a cancel issued after they were
    shipped their work.
    """

    def __init__(self, flag_path: str | None = None, _cancelled: bool = False):
        self.flag_path = flag_path
        self._event = threading.Event()
        if _cancelled:
            self._event.set()
        self.reason = ""

    def cancel(self, reason: str = "") -> None:
        """Trigger the token (idempotent)."""
        self.reason = reason or self.reason
        self._event.set()
        if self.flag_path is not None:
            try:
                with open(self.flag_path, "w", encoding="utf-8") as handle:
                    handle.write(reason or "cancelled")
            except OSError:  # pragma: no cover - flag dir vanished
                pass

    @property
    def cancelled(self) -> bool:
        if self._event.is_set():
            return True
        if self.flag_path is not None and os.path.exists(self.flag_path):
            self._event.set()
            return True
        return False

    def check(self) -> None:
        """Raise :class:`~repro.errors.QueryCancelledError` once cancelled."""
        if self.cancelled:
            raise QueryCancelledError(self.reason)

    def __getstate__(self):
        return {
            "flag_path": self.flag_path,
            "cancelled": self._event.is_set(),
            "reason": self.reason,
        }

    def __setstate__(self, state):
        self.flag_path = state["flag_path"]
        self._event = threading.Event()
        if state["cancelled"]:
            self._event.set()
        self.reason = state["reason"]


class ExecutionLimits:
    """Deadline plus cancellation token, checked with a stride.

    One instance travels per work unit (picklable); ``checkpoint()`` is
    the cheap per-tuple call (a counter decrement until the stride
    elapses), ``check()`` the immediate one used at phase boundaries.
    """

    __slots__ = ("deadline", "token", "_countdown")

    def __init__(
        self,
        deadline: QueryDeadline | None = None,
        token: CancellationToken | None = None,
    ):
        self.deadline = deadline
        self.token = token
        self._countdown = CHECK_STRIDE

    @property
    def active(self) -> bool:
        return self.deadline is not None or self.token is not None

    def check(self) -> None:
        """Check both limits immediately."""
        if self.token is not None:
            self.token.check()
        if self.deadline is not None:
            self.deadline.check()

    def checkpoint(self) -> None:
        """Strided check: every :data:`CHECK_STRIDE` calls does a real check."""
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = CHECK_STRIDE
            self.check()

    def remaining_seconds(self) -> float | None:
        """Deadline slack right now (None without a deadline)."""
        if self.deadline is None:
            return None
        return self.deadline.remaining()

    def __getstate__(self):
        return {"deadline": self.deadline, "token": self.token}

    def __setstate__(self, state):
        self.deadline = state["deadline"]
        self.token = state["token"]
        self._countdown = CHECK_STRIDE
