"""Physical (pull-based) execution of logical operators.

Every unary operator is a generator transformer: it consumes an input
tuple iterator and yields output tuples, so a fully pipelined plan (the
post-rewrite shape) never materializes more than one tuple's worth of
state per operator.  Materializing operators — JOIN's build side, the
GROUP-BY table, ``sequence`` aggregates, and the naive ``collection``
expression — charge the context's memory tracker, which is what makes
the paper's before/after memory comparisons measurable.

Entry points:

- :func:`execute` — recursive execution of a (sub)plan,
- :func:`run_operator` — one unary operator over a given input stream
  (used by the partitioned executor to re-run plan fragments over
  exchanged tuples),
- :func:`run_plan` — full plan to a list of result items.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import ItemTypeError, PlanError, RuntimeExecutionError
from repro.algebra.context import EvaluationContext
from repro.algebra.expressions import (
    ComparisonExpr,
    Expression,
    effective_boolean_value,
)
from repro.algebra.operators import (
    Aggregate,
    Assign,
    DataScan,
    DistributeResult,
    EmptyTupleSource,
    GroupBy,
    Join,
    NestedTupleSource,
    Operator,
    Select,
    Sort,
    Subplan,
    Unnest,
)
from repro.algebra.plan import LogicalPlan
from repro.algebra.rules.base import conjuncts, subtree_variables
from repro.hyracks.aggregates import make_accumulators
from repro.hyracks.spill import (
    GROUP_ENTRY_BYTES as _GROUP_ENTRY_BYTES,
    fold_group_lists,
    fold_group_table,
)
from repro.hyracks.tuples import Tuple, extend_tuple, merge_tuples, sizeof_tuple
from repro.jsonlib.items import (
    Item,
    canonical_item,
    canonical_key,
    sizeof_item,
)

# Re-exported here for backwards compatibility: the canonical grouping /
# join / distinct-values key lives in repro.jsonlib.items so the JSONiq
# builtins share exactly the same numeric-equality semantics.
__all__ = [
    "canonical_item",
    "canonical_key",
    "execute",
    "hash_join",
    "run_chain",
    "run_operator",
    "run_plan",
    "split_join_condition",
]


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def execute(op: Operator, ctx: EvaluationContext) -> Iterator[Tuple]:
    """Execute a (sub)plan rooted at *op*, yielding output tuples."""
    if isinstance(op, EmptyTupleSource):
        return iter([{}])
    if isinstance(op, NestedTupleSource):
        raise PlanError(
            "NESTED-TUPLE-SOURCE outside a SUBPLAN/GROUP-BY nested plan"
        )
    if isinstance(op, DataScan):
        stream = _execute_datascan(op, ctx)
        if ctx.profile is not None:
            stream = ctx.profile.observe(op, stream)
        return stream
    if isinstance(op, Join):
        stream = _execute_join(op, ctx)
        if ctx.profile is not None:
            stream = ctx.profile.observe(op, stream)
        return stream
    (input_op,) = op.inputs
    return run_operator(op, execute(input_op, ctx), ctx)


def run_operator(
    op: Operator, source: Iterable[Tuple], ctx: EvaluationContext
) -> Iterator[Tuple]:
    """Run one unary operator over a given input tuple stream.

    With profiling enabled the input stream is wrapped to count tuples
    flowing in, and the output stream to count tuples flowing out and
    to charge the operator's (inclusive) timing span.
    """
    profile = ctx.profile
    if profile is not None:
        source = profile.count_input(op, source)
    stream = _dispatch_operator(op, source, ctx)
    if profile is not None:
        stream = profile.observe(op, stream)
    return stream


def _dispatch_operator(
    op: Operator, source: Iterable[Tuple], ctx: EvaluationContext
) -> Iterator[Tuple]:
    if isinstance(op, Assign):
        return _execute_assign(op, source, ctx)
    if isinstance(op, Unnest):
        return _execute_unnest(op, source, ctx)
    if isinstance(op, Select):
        return _execute_select(op, source, ctx)
    if isinstance(op, Aggregate):
        return _execute_aggregate(op, source, ctx)
    if isinstance(op, Subplan):
        return _execute_subplan(op, source, ctx)
    if isinstance(op, GroupBy):
        return _execute_group_by(op, source, ctx)
    if isinstance(op, Sort):
        return _execute_sort(op, source, ctx)
    if isinstance(op, DistributeResult):
        return _execute_distribute(op, source, ctx)
    raise PlanError(f"no physical implementation for {op.name}")


def run_chain(
    ops_bottom_up: list[Operator],
    source: Iterable[Tuple],
    ctx: EvaluationContext,
) -> Iterator[Tuple]:
    """Run a chain of unary operators (bottom-most first) over *source*."""
    stream: Iterable[Tuple] = source
    for op in ops_bottom_up:
        stream = run_operator(op, stream, ctx)
    return iter(stream)


def run_plan(plan: LogicalPlan, ctx: EvaluationContext) -> list[Item]:
    """Execute a full plan and return the result items.

    The plan root must be DISTRIBUTE-RESULT; each of its expressions is
    evaluated per tuple and all items are concatenated.
    """
    root = plan.root
    if not isinstance(root, DistributeResult):
        raise PlanError("plan root must be DISTRIBUTE-RESULT")
    results: list[Item] = []
    for tup in execute(root, ctx):
        results.extend(tup["__result__"])
    return results


# ---------------------------------------------------------------------------
# Operator implementations
# ---------------------------------------------------------------------------


def _execute_datascan(op: DataScan, ctx: EvaluationContext) -> Iterator[Tuple]:
    if ctx.source is None:
        raise RuntimeExecutionError("no data source configured for DATASCAN")
    scanned = 0
    scanned_bytes = 0
    profile = ctx.profile
    track = ctx.stats is not None or profile is not None
    attach_counters = None
    counters = None
    if profile is not None:
        attach_counters = getattr(ctx.source, "attach_scan_counters", None)
        if attach_counters is not None:
            from repro.jsonlib.textscan import ScanCounters

            counters = ScanCounters()
            attach_counters(counters)
    limits = ctx.limits
    try:
        for item in ctx.source.scan_collection(
            op.collection, op.project_path, partition=ctx.partition
        ):
            if limits is not None:
                limits.checkpoint()
            scanned += 1
            if track:
                scanned_bytes += sizeof_item(item)
            yield {op.variable: [item]}
    finally:
        if attach_counters is not None:
            attach_counters(None)
        if ctx.stats is not None:
            ctx.stats.items_scanned += scanned
            ctx.stats.scanned_item_bytes += scanned_bytes
        if profile is not None:
            profile.add(op, "items_scanned", scanned)
            profile.add(op, "bytes_scanned", scanned_bytes)
            if counters is not None:
                profile.add(op, "projection_hits", counters.matched)
                profile.add(op, "projection_skips", counters.skipped)
                # Scan fast-path diagnostics (zero when the mode/cache
                # that produces them is off, keeping profiles stable).
                if counters.tape_records:
                    profile.add(op, "tape_records", counters.tape_records)
                    profile.add(op, "tape_tokens", counters.tape_tokens)
                if counters.cache_hits:
                    profile.add(op, "cache_hits", counters.cache_hits)
                if counters.cache_misses:
                    profile.add(op, "cache_misses", counters.cache_misses)
                if counters.cache_corrupt:
                    profile.add(op, "cache_corrupt", counters.cache_corrupt)


def _execute_assign(
    op: Assign, source: Iterable[Tuple], ctx: EvaluationContext
) -> Iterator[Tuple]:
    expression = op.expression
    variable = op.variable
    for tup in source:
        yield extend_tuple(tup, variable, expression.evaluate(tup, ctx))


def _execute_unnest(
    op: Unnest, source: Iterable[Tuple], ctx: EvaluationContext
) -> Iterator[Tuple]:
    expression = op.expression
    variable = op.variable
    for tup in source:
        for item in expression.evaluate(tup, ctx):
            yield extend_tuple(tup, variable, [item])


def _execute_select(
    op: Select, source: Iterable[Tuple], ctx: EvaluationContext
) -> Iterator[Tuple]:
    condition = op.condition
    for tup in source:
        if effective_boolean_value(condition.evaluate(tup, ctx)):
            yield tup


def _execute_aggregate(
    op: Aggregate, source: Iterable[Tuple], ctx: EvaluationContext
) -> Iterator[Tuple]:
    accumulators = make_accumulators(op.specs)
    limits = ctx.limits
    for tup in source:
        if limits is not None:
            limits.checkpoint()
        for accumulator in accumulators:
            accumulator.add(tup, ctx)
    yield {
        acc.spec.variable: acc.finish(ctx) for acc in accumulators
    }


def _execute_subplan(
    op: Subplan, source: Iterable[Tuple], ctx: EvaluationContext
) -> Iterator[Tuple]:
    for tup in source:
        bindings = execute_nested_plan(op.nested_root, [tup], ctx)
        yield merge_tuples(tup, bindings)


def execute_nested_plan(
    nested_root: Operator, outer_tuples: list[Tuple], ctx: EvaluationContext
) -> Tuple:
    """Run a nested plan whose NESTED-TUPLE-SOURCE emits *outer_tuples*.

    The nested root must be an AGGREGATE, so exactly one output tuple is
    produced; its bindings are returned.
    """
    if not isinstance(nested_root, Aggregate):
        raise PlanError("nested plan root must be AGGREGATE")

    def expand(node: Operator) -> Iterator[Tuple]:
        if isinstance(node, NestedTupleSource):
            return iter(outer_tuples)
        if not node.inputs:
            raise PlanError(
                f"unexpected leaf {node.name} inside a nested plan"
            )
        (input_op,) = node.inputs
        return run_operator(node, expand(input_op), ctx)

    outputs = list(expand(nested_root))
    return outputs[0]


def _execute_group_by(
    op: GroupBy, source: Iterable[Tuple], ctx: EvaluationContext
) -> Iterator[Tuple]:
    """Hash grouping.

    When the inner focus is ``AGGREGATE`` directly over
    ``NESTED-TUPLE-SOURCE`` (the common shape), groups fold
    incrementally — no group member list is kept unless a ``sequence``
    aggregate demands one.  Any other nested plan falls back to
    materializing each group's tuples.
    """
    nested = op.nested_root
    incremental = isinstance(nested, Aggregate) and isinstance(
        nested.input_op, NestedTupleSource
    )
    key_exprs = [expr for _, expr in op.keys]
    key_vars = [var for var, _ in op.keys]

    if incremental:
        groups = fold_group_table(key_exprs, nested.specs, source, ctx, op=op)
        if ctx.profile is not None:
            ctx.profile.add(op, "groups", len(groups))
        try:
            for key_values, accumulators in groups.values():
                out = dict(zip(key_vars, key_values))
                for accumulator in accumulators:
                    out[accumulator.spec.variable] = accumulator.finish(ctx)
                yield out
        finally:
            if ctx.memory is not None:
                ctx.release(_GROUP_ENTRY_BYTES * len(groups))
        return

    # General nested plans: materialize the group's tuples (spilling the
    # member lists to run files under budget pressure).
    def finalize(key_values, tuples):
        bindings = execute_nested_plan(op.nested_root, tuples, ctx)
        out = dict(zip(key_vars, key_values))
        out.update(bindings)
        return out

    outputs, group_count = fold_group_lists(
        key_exprs, source, ctx, finalize, op=op
    )
    if ctx.profile is not None:
        ctx.profile.add(op, "groups", group_count)
    yield from outputs


def _execute_sort(
    op: Sort, source: Iterable[Tuple], ctx: EvaluationContext
) -> Iterator[Tuple]:
    """Blocking sort: materialize, order by canonical keys, emit.

    Descending keys are handled by sorting in passes from the least
    significant key to the most significant (stable sorts compose).
    With a spill manager on the context the sort runs externally
    (:func:`~repro.hyracks.spill.external_sort`), producing the exact
    same order via composite keys with an arrival-sequence tie-break.
    """
    if ctx.spill is not None and ctx.memory is not None:
        from repro.hyracks.spill import external_sort

        yield from external_sort(op.specs, source, ctx, op=op)
        return
    tuples = list(source)
    charged = 0
    try:
        if ctx.memory is not None:
            charged = sum(sizeof_tuple(t) for t in tuples)
            ctx.charge(charged)
        for expression, descending in reversed(op.specs):
            tuples.sort(
                key=lambda tup: canonical_key(expression.evaluate(tup, ctx)),
                reverse=descending,
            )
        yield from tuples
    finally:
        if charged:
            ctx.release(charged)


def _execute_distribute(
    op: DistributeResult, source: Iterable[Tuple], ctx: EvaluationContext
) -> Iterator[Tuple]:
    expressions = op.expressions
    for tup in source:
        items: list[Item] = []
        for expression in expressions:
            items.extend(expression.evaluate(tup, ctx))
        yield {"__result__": items}


# ---------------------------------------------------------------------------
# Join
# ---------------------------------------------------------------------------


def split_join_condition(
    join: Join,
) -> tuple[list[Expression], list[Expression], list[Expression]]:
    """Split a join condition into (left keys, right keys, residual).

    Equality conjuncts whose operands each depend on exactly one branch
    become hash-key pairs (aligned by index); everything else is residual
    and gets evaluated on candidate pairs.
    """
    left_vars = subtree_variables(join.left)
    right_vars = subtree_variables(join.right)
    left_keys: list[Expression] = []
    right_keys: list[Expression] = []
    residual: list[Expression] = []
    for conjunct in conjuncts(join.condition):
        if isinstance(conjunct, ComparisonExpr) and conjunct.op == "eq":
            a_vars = conjunct.left.free_variables()
            b_vars = conjunct.right.free_variables()
            if a_vars and b_vars:
                if a_vars <= left_vars and b_vars <= right_vars:
                    left_keys.append(conjunct.left)
                    right_keys.append(conjunct.right)
                    continue
                if a_vars <= right_vars and b_vars <= left_vars:
                    left_keys.append(conjunct.right)
                    right_keys.append(conjunct.left)
                    continue
        residual.append(conjunct)
    return left_keys, right_keys, residual


def _is_always_true(expression: Expression) -> bool:
    from repro.algebra.expressions import Literal

    return isinstance(expression, Literal) and expression.sequence == [True]


def _execute_join(op: Join, ctx: EvaluationContext) -> Iterator[Tuple]:
    left_keys, right_keys, residual = split_join_condition(op)
    left_stream = execute(op.left, ctx)
    right_stream = execute(op.right, ctx)
    if left_keys:
        # Profile counters follow the *physical* role: whichever input
        # the (possibly cost-swapped) hash join materializes counts as
        # build_tuples, the streamed one as probe_tuples.
        if ctx.profile is not None:
            build_on_left = op.build_side == "left"
            left_stream = ctx.profile.count_into(
                op,
                "build_tuples" if build_on_left else "probe_tuples",
                left_stream,
            )
            right_stream = ctx.profile.count_into(
                op,
                "probe_tuples" if build_on_left else "build_tuples",
                right_stream,
            )
        yield from hash_join(
            left_stream, right_stream, left_keys, right_keys, residual, ctx,
            op=op, build_side=op.build_side,
        )
    else:
        # A nested-loop join has no build/probe phases; it streams the
        # outer (left) input against a materialized inner (right) one.
        if ctx.profile is not None:
            left_stream = ctx.profile.count_into(
                op, "outer_tuples", left_stream
            )
            right_stream = ctx.profile.count_into(
                op, "inner_tuples", right_stream
            )
        yield from _nested_loop_join(left_stream, right_stream, op, ctx)


def join_key(
    tup: Tuple,
    keys: list[Expression],
    ctx: EvaluationContext,
    op: Operator | None = None,
):
    """Canonical equi-join key of *tup*, or None when any component is
    the empty sequence (``x eq ()`` is false, so the tuple cannot join).

    A component evaluating to a *multi-item* sequence raises
    :class:`~repro.errors.ItemTypeError`, exactly like the ``eq`` value
    comparison the key was extracted from would — hashing the whole
    sequence instead would let the hash/grace/exchange paths "match"
    pairs the scalar comparison rejects as a type error.

    Dropped (empty-key) tuples are counted on *op*'s profile node as
    ``join_keys_dropped`` when a profile is attached.
    """
    key = []
    for expr in keys:
        value = expr.evaluate(tup, ctx)
        if not value:
            if ctx.profile is not None and op is not None:
                ctx.profile.add(op, "join_keys_dropped", 1)
            return None
        if len(value) > 1:
            raise ItemTypeError(
                "value comparison 'eq' over a multi-item sequence"
            )
        key.append(canonical_key(value))
    return tuple(key)


def hash_join(
    left_stream: Iterable[Tuple],
    right_stream: Iterable[Tuple],
    left_keys: list[Expression],
    right_keys: list[Expression],
    residual: list[Expression],
    ctx: EvaluationContext,
    op: Operator | None = None,
    build_side: str = "right",
) -> Iterator[Tuple]:
    """Hash join; *build_side* picks which input is materialized.

    The default builds on the right input and probes with the left (the
    un-costed orientation); the cost phase may annotate a join to build
    on the smaller left input instead.  Output tuples are emitted in
    probe order either way, and the probe/build merge order matches the
    grace-join spill path so results are byte-identical spill on/off.

    A tuple whose key expression evaluates to the empty sequence can
    never satisfy the ``eq`` conjunct it came from (a general comparison
    with ``()`` is false), so such tuples are dropped on both sides
    instead of being hashed — two missing keys must not match each
    other.

    When a spill manager is configured and the build side outgrows the
    memory budget, the join hands off to
    :func:`~repro.hyracks.spill.grace_join_overflow` (grace hash join),
    which re-emits results in probe order so the output stays
    byte-identical.
    """
    if build_side == "left":
        build_stream, build_keys = left_stream, left_keys
        probe_stream, probe_keys = right_stream, right_keys
    else:
        build_stream, build_keys = right_stream, right_keys
        probe_stream, probe_keys = left_stream, left_keys
    limits = ctx.limits
    table: dict = {}
    charged = 0
    try:
        build_iter = iter(build_stream)
        for tup in build_iter:
            if limits is not None:
                limits.checkpoint()
            key = join_key(tup, build_keys, ctx, op=op)
            if key is None:
                continue
            if ctx.memory is not None:
                n_bytes = sizeof_tuple(tup)
                if ctx.spill is not None:
                    if not ctx.memory.try_allocate(n_bytes):
                        from repro.hyracks.spill import grace_join_overflow

                        # The overflowing tuple joins the table uncharged;
                        # the grace path writes the table out and releases
                        # the accumulated charge itself.
                        table.setdefault(key, []).append(tup)
                        overflow = grace_join_overflow(
                            table,
                            charged,
                            build_iter,
                            build_keys,
                            probe_stream,
                            probe_keys,
                            residual,
                            ctx,
                            op=op,
                        )
                        table = {}
                        charged = 0
                        yield from overflow
                        return
                    charged += n_bytes
                else:
                    ctx.charge(n_bytes)
                    charged += n_bytes
            table.setdefault(key, []).append(tup)
        for tup in probe_stream:
            if limits is not None:
                limits.checkpoint()
            key = join_key(tup, probe_keys, ctx, op=op)
            if key is None:
                continue
            for match in table.get(key, ()):
                joined = merge_tuples(tup, match)
                if all(
                    effective_boolean_value(conjunct.evaluate(joined, ctx))
                    for conjunct in residual
                ):
                    yield joined
    finally:
        if charged:
            ctx.release(charged)


#: how often the nested-loop build loop re-checks limits; the build is
#: pure materialization, so a small stride keeps cancellation prompt
#: without a per-tuple branch dominating the loop.
_NLJOIN_CHECK_STRIDE = 64


def _nested_loop_join(
    left_stream: Iterable[Tuple],
    right_stream: Iterable[Tuple],
    op: Join,
    ctx: EvaluationContext,
) -> Iterator[Tuple]:
    limits = ctx.limits
    always_true = _is_always_true(op.condition)
    if ctx.spill is not None and ctx.memory is not None:
        from repro.hyracks.spill import SpilledSequence

        right_seq = SpilledSequence(ctx, label="nljoin", op=op)
        try:
            for tup in right_stream:
                if limits is not None:
                    limits.checkpoint()
                right_seq.append(tup, sizeof_tuple(tup))
            for left_tuple in left_stream:
                if limits is not None:
                    limits.checkpoint()
                for right_tuple in right_seq:
                    joined = merge_tuples(left_tuple, right_tuple)
                    if always_true or effective_boolean_value(
                        op.condition.evaluate(joined, ctx)
                    ):
                        yield joined
        finally:
            right_seq.close()
        return
    # Materialize the inner side with strided limit checkpoints (like
    # the spill path above) so a deadline or cancellation can unwind
    # mid-build instead of only after the whole inner side is in memory.
    right: list[Tuple] = []
    for index, tup in enumerate(right_stream):
        if limits is not None and index % _NLJOIN_CHECK_STRIDE == 0:
            limits.checkpoint()
        right.append(tup)
    charged = 0
    try:
        if ctx.memory is not None:
            charged = sum(sizeof_tuple(t) for t in right)
            ctx.charge(charged)
        for left_tuple in left_stream:
            if limits is not None:
                limits.checkpoint()
            for right_tuple in right:
                joined = merge_tuples(left_tuple, right_tuple)
                if always_true or effective_boolean_value(
                    op.condition.evaluate(joined, ctx)
                ):
                    yield joined
    finally:
        if charged:
            ctx.release(charged)
