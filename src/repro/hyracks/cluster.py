"""Simulated cluster: places partition work on nodes, cores, hyperthreads.

The paper's cluster experiments (Figures 17 and 20-25) ran on up to nine
4-core Opteron nodes.  We cannot run nine machines, so — per the
substitution rule — each partition's work is executed *for real* (and
timed), and this module composes a **makespan** from those measured
per-partition times with a placement model:

- partitions are assigned round-robin to nodes;
- within a node, partitions are placed on cores with an LPT greedy
  (longest processing time first) schedule;
- hyperthreads do not add CPU capacity: the workload is CPU-bound (JSON
  parsing), so two hyperthreads on one core run *sequentially*
  (Section 5.3's explanation of the 8-partition plateau in Figure 17);
  an oversubscription overhead is charged per extra partition sharing a
  core;
- exchanged bytes cross the network at a configurable bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClusterSpec:
    """A cluster configuration for makespan composition.

    The defaults mirror the paper's testbed: 4-core nodes with two
    hyperthreads per core and four data partitions per node.
    """

    nodes: int = 1
    cores_per_node: int = 4
    hyperthreads_per_core: int = 2
    partitions_per_node: int = 4
    network_bandwidth_bytes_per_s: float = 100e6
    network_latency_s: float = 0.001
    oversubscription_overhead: float = 0.05

    @property
    def total_partitions(self) -> int:
        """Partitions across the whole cluster."""
        return self.nodes * self.partitions_per_node

    @property
    def slots_per_node(self) -> int:
        """Schedulable hardware threads per node."""
        return self.cores_per_node * self.hyperthreads_per_core

    def single_node(self, partitions: int) -> "ClusterSpec":
        """A one-node variant with *partitions* partitions (Figure 17)."""
        return ClusterSpec(
            nodes=1,
            cores_per_node=self.cores_per_node,
            hyperthreads_per_core=self.hyperthreads_per_core,
            partitions_per_node=partitions,
            network_bandwidth_bytes_per_s=self.network_bandwidth_bytes_per_s,
            network_latency_s=self.network_latency_s,
            oversubscription_overhead=self.oversubscription_overhead,
        )

    def with_nodes(self, nodes: int) -> "ClusterSpec":
        """The same node configuration scaled to *nodes* nodes."""
        return ClusterSpec(
            nodes=nodes,
            cores_per_node=self.cores_per_node,
            hyperthreads_per_core=self.hyperthreads_per_core,
            partitions_per_node=self.partitions_per_node,
            network_bandwidth_bytes_per_s=self.network_bandwidth_bytes_per_s,
            network_latency_s=self.network_latency_s,
            oversubscription_overhead=self.oversubscription_overhead,
        )

    # -- makespan -------------------------------------------------------------

    def makespan(
        self,
        partition_seconds: list[float],
        exchange_bytes: int = 0,
        global_seconds: float = 0.0,
        injected_seconds: list[float] | None = None,
    ) -> float:
        """Simulated wall-clock for the given per-partition work.

        ``partition_seconds[i]`` is the measured CPU time of partition
        ``i``; ``exchange_bytes`` crossed the network; ``global_seconds``
        ran on the coordinator after all partitions finished.
        ``injected_seconds[i]`` is simulated-clock time charged to
        partition ``i`` on top of its measured compute — retry backoff
        and injected straggler delays; unlike measured times, these are
        real skew, so callers smoothing measurements must pass them here
        rather than folding them in beforehand.
        """
        if injected_seconds:
            width = max(len(partition_seconds), len(injected_seconds))
            base = list(partition_seconds) + [0.0] * (
                width - len(partition_seconds)
            )
            extra = list(injected_seconds) + [0.0] * (
                width - len(injected_seconds)
            )
            partition_seconds = [b + e for b, e in zip(base, extra)]
        if not partition_seconds:
            return global_seconds
        node_times = []
        for node in range(self.nodes):
            local = partition_seconds[node :: self.nodes]
            if local:
                node_times.append(self._node_time(local))
        compute = max(node_times) if node_times else 0.0
        network = 0.0
        if exchange_bytes:
            parallel_links = max(self.nodes, 1)
            network = (
                exchange_bytes
                / self.network_bandwidth_bytes_per_s
                / parallel_links
                + self.network_latency_s
            )
        return compute + network + global_seconds

    def _node_time(self, partition_times: list[float]) -> float:
        """LPT schedule of one node's partitions onto its physical cores.

        Hyperthread slots beyond the physical cores add no capacity but
        each oversubscribed partition pays a small overhead.
        """
        cores = [0.0] * self.cores_per_node
        extra = max(0, len(partition_times) - self.cores_per_node)
        penalty = 1.0 + self.oversubscription_overhead * (
            extra / max(len(partition_times), 1)
        )
        for duration in sorted(partition_times, reverse=True):
            slot = cores.index(min(cores))
            cores[slot] += duration * penalty
        return max(cores)
