"""Fixed-size frames — Hyracks' unit of data movement.

Hyracks "processes data in partitions of contiguous bytes, moving data in
fixed-sized frames that contain physical records" (Section 3.1).  The
pipelining rules matter precisely because a tuple must fit in a frame:
Section 4.2 notes that the merged DATASCAN "satisfies Hyracks' dataflow
frame size restriction".

The runtime uses frames at exchange boundaries: tuples are appended to a
:class:`FrameWriter`; each filled :class:`Frame` is delivered through the
writer's callback.  A tuple larger than a frame raises
:class:`FrameOverflowError` unless the writer was built with
``allow_big_objects`` (VXQuery-style variable-size frames for oversized
records, at a tracked cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.errors import FrameOverflowError
from repro.hyracks.tuples import Tuple, sizeof_tuple

DEFAULT_FRAME_BYTES = 32 * 1024


@dataclass(slots=True)
class Frame:
    """One frame: a batch of tuples within a byte budget."""

    capacity: int
    tuples: list[Tuple] = field(default_factory=list)
    used: int = 0

    def fits(self, n_bytes: int) -> bool:
        return self.used + n_bytes <= self.capacity

    def append(self, tup: Tuple, n_bytes: int) -> None:
        self.tuples.append(tup)
        self.used += n_bytes

    def __len__(self) -> int:
        return len(self.tuples)


class FrameWriter:
    """Packs a tuple stream into fixed-size frames.

    Parameters
    ----------
    frame_bytes:
        Frame capacity (default 32 KiB).
    allow_big_objects:
        When True, a tuple bigger than a frame gets a dedicated oversized
        frame instead of raising; ``big_object_count`` records how often
        that happened.
    on_frame:
        Callback invoked with each completed frame.
    """

    def __init__(
        self,
        frame_bytes: int = DEFAULT_FRAME_BYTES,
        allow_big_objects: bool = False,
        on_frame: Callable[[Frame], None] | None = None,
    ):
        self.frame_bytes = frame_bytes
        self.allow_big_objects = allow_big_objects
        self.on_frame = on_frame
        self.frames_emitted = 0
        self.tuples_written = 0
        self.bytes_written = 0
        self.big_object_count = 0
        self._current = Frame(frame_bytes)

    def write(self, tup: Tuple, n_bytes: int | None = None) -> None:
        """Append one tuple, emitting frames through the callback.

        *n_bytes* overrides the item-model size computation — spill run
        writers pack records that are not JSON items (pickled partial
        states, sequence-tagged rows) and size them generically.
        """
        if n_bytes is None:
            n_bytes = sizeof_tuple(tup)
        self.tuples_written += 1
        self.bytes_written += n_bytes
        if n_bytes > self.frame_bytes:
            if not self.allow_big_objects:
                raise FrameOverflowError(n_bytes, self.frame_bytes)
            self.big_object_count += 1
            self.flush()
            oversized = Frame(n_bytes)
            oversized.append(tup, n_bytes)
            self._emit(oversized)
            return
        if not self._current.fits(n_bytes):
            self.flush()
        self._current.append(tup, n_bytes)

    def flush(self) -> None:
        """Emit the partially-filled current frame, if any."""
        if self._current.tuples:
            self._emit(self._current)
            self._current = Frame(self.frame_bytes)

    def _emit(self, frame: Frame) -> None:
        self.frames_emitted += 1
        if self.on_frame is not None:
            self.on_frame(frame)


def frame_stream(
    tuples: Iterable[Tuple],
    frame_bytes: int = DEFAULT_FRAME_BYTES,
    allow_big_objects: bool = True,
) -> Iterator[Frame]:
    """Pack a tuple stream into a stream of frames, lazily."""
    pending: list[Frame] = []
    writer = FrameWriter(
        frame_bytes, allow_big_objects=allow_big_objects, on_frame=pending.append
    )
    for tup in tuples:
        writer.write(tup)
        while pending:
            yield pending.pop(0)
    writer.flush()
    while pending:
        yield pending.pop(0)


def unframe(frames: Iterable[Frame]) -> Iterator[Tuple]:
    """Flatten a frame stream back into tuples."""
    for frame in frames:
        yield from frame.tuples
