"""Crash recovery, the degradation ladder, and speculative execution.

The paper's engine inherits Hyracks' cluster execution model, where
worker loss and stragglers are absorbed by the runtime rather than
surfaced to the query author.  This module gives the process/thread
backends the same posture:

- **worker-loss recovery** — when a pool worker dies
  (``BrokenProcessPool`` under the process backend,
  :class:`~repro.errors.WorkerCrashError` under thread/sequential), the
  coordinator keeps every finished partition's result, rebuilds the
  pool, and reschedules only the unfinished work units.  Each unit has
  a bounded attempt budget (:class:`~repro.resilience.policies.RecoveryPolicy`
  ``max_unit_attempts``), so a deterministically crashing partition
  escalates with :class:`~repro.errors.RecoveryExhaustedError` instead
  of looping;
- **degradation ladder** — after repeated worker loss on one tier the
  remaining units step down process→thread→sequential, each step
  recorded in the :class:`~repro.resilience.report.DegradationReport`;
- **speculative stragglers** — a watchdog (reading a clock from the
  :data:`repro.observability.clock.CLOCKS` registry) flags units running
  longer than a multiple of the median completion time and launches a
  duplicate.  First result wins, and completed futures are processed in
  (unit index, primary-before-speculative) order, so the winning result
  is selected deterministically and output stays byte-identical: both
  attempts run the same deterministic work.

Determinism under injected crashes hinges on one bookkeeping rule: the
kill/stall faults are keyed on the **unit-level attempt number**
(``WorkUnit.attempt_offset`` + the in-worker attempt counter), a pure
function of the fault schedule with no stateful counters.  A fresh
worker process re-running a crashed partition therefore sees attempt 2,
not attempt 1, and a kill scheduled for attempt 1 fires exactly once.
The coordinator learns *which* partition crashed from a sentinel file
the dying worker drops just before ``os._exit`` — only that unit's
attempt offset advances; collateral units (healthy work killed when the
pool tore down) resubmit with unchanged offsets so their own scheduled
faults still fire on schedule.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
from concurrent.futures import FIRST_COMPLETED, CancelledError, wait
from dataclasses import dataclass, replace

from repro.errors import (
    BackendError,
    RecoveryExhaustedError,
    WorkerCrashError,
)
from repro.observability.clock import make_clock

#: exit status an injected kill dies with (distinguishable in core dumps
#: and CI logs from a real interpreter fault)
KILL_EXIT_CODE = 87

_SENTINEL_PREFIX = "crash-"

# Set (per process) by the pool-worker entry point so an injected kill
# knows whether it may really call os._exit or must raise
# WorkerCrashError instead (killing the interpreter would take the
# whole test run down under the thread/sequential backends).
_IN_POOL_WORKER = False


def mark_pool_worker() -> None:
    """Flag this process as a pool worker (called by the worker entry)."""
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = True


def in_pool_worker() -> bool:
    return _IN_POOL_WORKER


def simulate_worker_kill(unit, attempt: int, message: str) -> None:
    """Die the way the fault plan scheduled.

    In a process-pool worker: drop a crash sentinel naming the partition
    and attempt, then ``os._exit`` — an abrupt death the coordinator
    observes as ``BrokenProcessPool``.  Anywhere else: raise
    :class:`~repro.errors.WorkerCrashError`, the same signal without
    taking the interpreter down.
    """
    if _IN_POOL_WORKER:
        write_crash_sentinel(
            getattr(unit, "crash_log_dir", None),
            unit.partition,
            attempt,
            message,
        )
        os._exit(KILL_EXIT_CODE)
    raise WorkerCrashError(unit.partition, attempt, message)


def write_crash_sentinel(
    directory: str | None, partition: int, attempt: int, message: str
) -> None:
    """Record (partition, attempt, message) for the coordinator to find.

    Best effort: a sentinel that cannot be written degrades recovery to
    the unattributed-crash path, it never blocks the (dying) worker.
    """
    if not directory:
        return
    path = os.path.join(directory, f"{_SENTINEL_PREFIX}p{partition}-a{attempt}")
    try:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(message)
    except OSError:  # pragma: no cover - sentinel loss is survivable
        pass


def read_crash_sentinels(directory: str) -> list[tuple[int, int, str]]:
    """Collect and remove crash sentinels, sorted by (partition, attempt)."""
    entries: list[tuple[int, int, str]] = []
    try:
        names = os.listdir(directory)
    except OSError:
        return entries
    for name in names:
        if not name.startswith(_SENTINEL_PREFIX):
            continue
        try:
            part_token, attempt_token = name[len(_SENTINEL_PREFIX):].split("-")
            partition = int(part_token[1:])
            attempt = int(attempt_token[1:])
        except (ValueError, IndexError):
            continue
        path = os.path.join(directory, name)
        try:
            with open(path, encoding="utf-8") as handle:
                message = handle.read()
        except OSError:
            message = ""
        try:
            os.remove(path)
        except OSError:  # pragma: no cover
            pass
        entries.append((partition, attempt, message))
    entries.sort()
    return entries


# ---------------------------------------------------------------------------
# Recovery events (folded into stats/report by the coordinator)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RecoveryEvent:
    """One recovery-layer happening, drained by the executor after a run.

    ``worker_loss`` and ``ladder_step`` are deterministic under a seeded
    kill schedule and land in the degradation report;
    ``pool_rebuild``/``speculative_*`` are timing-dependent and only
    feed the execution-stats counters.
    """

    kind: str  # worker_loss | ladder_step | pool_rebuild | speculative_*
    partition: int = -1
    attempt: int = 0
    tier: str = ""
    to_tier: str = ""
    message: str = ""


def recovery_policy_for(units) -> object | None:
    """The :class:`RecoveryPolicy` shared by *units* (None when absent)."""
    for unit in units:
        policy = getattr(unit.resilience, "recovery", None)
        if policy is not None:
            return policy
    return None


def run_unit_with_crash_retry(unit, policy, events: list) -> object:
    """Execute one unit inline, absorbing injected worker kills.

    The sequential tier of the recovery engine, also used directly by
    the sequential backend (and the thread backend's single-worker fast
    path) so injected kills behave identically on every backend.
    """
    from repro.hyracks.backends import execute_work_unit

    base = unit.attempt_offset
    crashes = base
    while True:
        try:
            return execute_work_unit(_with_offset(unit, crashes))
        except WorkerCrashError as crash:
            if policy is None or not policy.enabled:
                raise
            crashes += 1
            events.append(
                RecoveryEvent(
                    "worker_loss",
                    partition=unit.partition,
                    attempt=crashes,
                    message=crash.detail or str(crash),
                )
            )
            if crashes >= policy.max_unit_attempts:
                raise RecoveryExhaustedError(
                    (unit.partition,),
                    (crashes,),
                    backend="sequential",
                    cause=crash,
                ) from crash


# ---------------------------------------------------------------------------
# The recovery engine
# ---------------------------------------------------------------------------


class _PoolLost(Exception):
    """Internal: the current tier's process pool broke."""

    def __init__(self, cause: Exception):
        super().__init__(str(cause))
        self.cause = cause


class _StepDown(Exception):
    """Internal: too many worker losses on this tier; take the ladder."""

    def __init__(self, cause: Exception):
        super().__init__(str(cause))
        self.cause = cause


class _UnitState:
    """Coordinator-side bookkeeping for one work unit."""

    __slots__ = ("unit", "index", "crashes", "speculated", "blob0")

    def __init__(self, unit, index: int):
        self.unit = unit
        self.index = index
        self.crashes = 0  # crashes attributed to this unit == attempt offset
        self.speculated = False
        self.blob0 = None  # cached pickle of the offset-0 unit


class _Flight:
    """One in-flight execution attempt of a unit."""

    __slots__ = ("state", "offset", "speculative", "started_at")

    def __init__(self, state, offset, speculative, started_at):
        self.state = state
        self.offset = offset
        self.speculative = speculative
        self.started_at = started_at


def _with_offset(unit, offset: int):
    if offset == unit.attempt_offset:
        return unit
    return replace(unit, attempt_offset=offset)


class _TierPools:
    """Pools per ladder tier: the host backend's own, plus ephemerals."""

    def __init__(self, host, max_workers: int):
        self._host = host
        self._max_workers = max_workers
        self._ephemeral: dict[str, object] = {}

    def get(self, tier: str):
        if tier == self._host.name:
            return self._host._ensure_pool()
        if tier == "thread":
            pool = self._ephemeral.get(tier)
            if pool is None:
                from concurrent.futures import ThreadPoolExecutor

                pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="repro-ladder",
                )
                self._ephemeral[tier] = pool
            return pool
        raise AssertionError(f"no pool for tier {tier!r}")

    def discard(self, tier: str) -> None:
        """Drop *tier*'s pool (it broke); the next ``get`` rebuilds it."""
        if tier == self._host.name:
            self._host.close()
        else:
            pool = self._ephemeral.pop(tier, None)
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        for pool in self._ephemeral.values():
            pool.shutdown(wait=False, cancel_futures=True)
        self._ephemeral.clear()


def _submit(tier: str, pool, state: _UnitState, offset: int):
    """Hand one attempt of a unit to *tier*'s pool."""
    if tier == "process":
        from repro.hyracks.backends import _run_pickled_unit

        if offset == 0 and state.blob0 is not None:
            blob = state.blob0
        else:
            blob = pickle.dumps(_with_offset(state.unit, offset))
        return pool.submit(_run_pickled_unit, blob)
    from repro.hyracks.backends import execute_work_unit

    return pool.submit(execute_work_unit, _with_offset(state.unit, offset))


def run_units_with_recovery(
    units: list, host, tiers: tuple[str, ...], max_workers: int, events: list
) -> list:
    """Run *units* on a ladder of execution tiers, surviving worker loss.

    Returns outcomes in submission order.  *host* is the backend that
    owns tier 0's pool; *events* receives :class:`RecoveryEvent`s for
    the executor to fold into stats and the degradation report.
    """
    units = list(units)
    if not units:
        return []
    policy = recovery_policy_for(units)
    crash_dir = tempfile.mkdtemp(prefix="repro-crash-")
    states = []
    by_partition: dict[int, _UnitState] = {}
    for index, unit in enumerate(units):
        unit.crash_log_dir = crash_dir
        state = _UnitState(unit, index)
        states.append(state)
        by_partition[unit.partition] = state
    if tiers[0] == "process":
        # Pickle up front: one clear BackendError instead of an opaque
        # pool crash when a source or function library is unpicklable,
        # raised before any worker starts.
        for state in states:
            try:
                state.blob0 = pickle.dumps(state.unit)
            except Exception as error:
                raise BackendError(
                    f"work unit for partition {state.unit.partition} is not "
                    f"picklable under the process backend ({error}); use "
                    "backend='thread' or 'sequential', or make the data "
                    "source and function library picklable",
                    cause=error,
                ) from error
    results: dict[int, object] = {}
    durations: list[float] = []
    clock = make_clock(policy.clock)
    pools = _TierPools(host, max_workers)
    tier_index = 0
    losses = 0  # worker losses on the current tier
    try:
        while len(results) < len(states):
            tier = tiers[tier_index]
            pending = [s for s in states if s.index not in results]
            if tier == "sequential":
                for state in pending:
                    results[state.index] = run_unit_with_crash_retry(
                        _with_offset(state.unit, state.crashes), policy, events
                    )
                break
            lower_exists = tier_index + 1 < len(tiers)
            try:
                _run_pooled_tier(
                    tier,
                    pools.get(tier),
                    pending,
                    results,
                    policy,
                    events,
                    clock,
                    durations,
                    lower_exists,
                    losses,
                )
            except _StepDown as step:
                # Thread-tier losses piled up; leave the (healthy) pool
                # alone and route the remaining units down the ladder.
                events.append(
                    RecoveryEvent(
                        "ladder_step",
                        tier=tier,
                        to_tier=tiers[tier_index + 1],
                        message=str(step.cause),
                    )
                )
                tier_index += 1
                losses = 0
                continue
            except _PoolLost as loss:
                losses += 1
                _account_pool_loss(
                    loss, crash_dir, by_partition, results, policy, events, tier
                )
                pools.discard(tier)
                if losses > policy.max_losses_per_tier and lower_exists:
                    events.append(
                        RecoveryEvent(
                            "ladder_step",
                            tier=tier,
                            to_tier=tiers[tier_index + 1],
                            message=(
                                f"{losses} pool loss(es) on the {tier} backend"
                            ),
                        )
                    )
                    tier_index += 1
                    losses = 0
                else:
                    events.append(RecoveryEvent("pool_rebuild", tier=tier))
                continue
            else:
                break  # tier drained every pending unit
    finally:
        pools.close()
        shutil.rmtree(crash_dir, ignore_errors=True)
    return [results[index] for index in range(len(states))]


def _account_pool_loss(
    loss: _PoolLost,
    crash_dir: str,
    by_partition: dict[int, _UnitState],
    results: dict[int, object],
    policy,
    events: list,
    tier: str,
) -> None:
    """Attribute a pool breakage to the units that caused it.

    Sentinel files name the injected kills precisely; a breakage with no
    sentinel (a real, un-injected crash) is attributed to every
    unresolved unit so a genuinely crashing partition still exhausts its
    budget instead of looping.
    """
    sentinels = read_crash_sentinels(crash_dir)
    crashed: list[_UnitState] = []
    if sentinels:
        for partition, _attempt, message in sentinels:
            state = by_partition.get(partition)
            if state is None or state.index in results:
                continue
            crashed.append(state)
            _note_crash(state, message, events)
    else:
        for state in sorted(by_partition.values(), key=lambda s: s.index):
            if state.index in results:
                continue
            crashed.append(state)
            _note_crash(state, str(loss.cause), events)
    exhausted = [
        state for state in crashed if state.crashes >= policy.max_unit_attempts
    ]
    if exhausted:
        raise RecoveryExhaustedError(
            tuple(state.unit.partition for state in exhausted),
            tuple(state.crashes for state in exhausted),
            backend=tier,
            cause=loss.cause,
        ) from loss.cause


def _note_crash(state: _UnitState, message: str, events: list) -> None:
    state.crashes += 1
    events.append(
        RecoveryEvent(
            "worker_loss",
            partition=state.unit.partition,
            attempt=state.crashes,
            message=message,
        )
    )


def _run_pooled_tier(
    tier: str,
    pool,
    pending: list[_UnitState],
    results: dict[int, object],
    policy,
    events: list,
    clock,
    durations: list[float],
    lower_exists: bool,
    losses_so_far: int,
) -> None:
    """Drive one pooled tier until every pending unit resolves.

    Raises :class:`_PoolLost` when the process pool breaks and
    :class:`_StepDown` when thread-tier worker losses exceed the ladder
    budget; both leave ``results`` holding everything that finished.
    """
    from concurrent.futures.process import BrokenProcessPool

    losses = losses_so_far
    flights: dict[object, _Flight] = {}

    def launch(state: _UnitState, offset: int, speculative: bool) -> None:
        try:
            future = _submit(tier, pool, state, offset)
        except BrokenProcessPool as broken:
            _harvest(flights, results)
            raise _PoolLost(broken) from broken
        flights[future] = _Flight(state, offset, speculative, clock())

    for state in pending:
        state.speculated = False
        launch(state, state.crashes, False)
    while flights:
        timeout = policy.watchdog_interval_seconds if policy.speculate else None
        done, _ = wait(set(flights), timeout=timeout, return_when=FIRST_COMPLETED)
        # Deterministic first-result-wins: within one wakeup, process
        # completions by unit index with the primary ahead of its
        # speculative twin, so the selected result never depends on
        # which future the OS happened to finish first.
        for future in sorted(
            done, key=lambda f: (flights[f].state.index, flights[f].speculative)
        ):
            flight = flights.pop(future)
            state = flight.state
            if state.index in results:
                if flight.speculative:
                    events.append(
                        RecoveryEvent(
                            "speculative_loss",
                            partition=state.unit.partition,
                            tier=tier,
                        )
                    )
                continue
            try:
                outcome = future.result()
            except CancelledError:  # pragma: no cover - defensive
                continue
            except BrokenProcessPool as broken:
                _harvest(flights, results)
                raise _PoolLost(broken) from broken
            except WorkerCrashError as crash:
                # Thread-tier injected kill: the pool survives, only the
                # unit's attempt is lost.
                _note_crash(state, crash.detail or str(crash), events)
                if state.crashes >= policy.max_unit_attempts:
                    raise RecoveryExhaustedError(
                        (state.unit.partition,),
                        (state.crashes,),
                        backend=tier,
                        cause=crash,
                    ) from crash
                losses += 1
                if losses > policy.max_losses_per_tier and lower_exists:
                    raise _StepDown(crash) from crash
                launch(state, state.crashes, False)
                continue
            results[state.index] = outcome
            durations.append(max(clock() - flight.started_at, 0.0))
            if flight.speculative:
                events.append(
                    RecoveryEvent(
                        "speculative_win",
                        partition=state.unit.partition,
                        tier=tier,
                    )
                )
            for other, twin in list(flights.items()):
                if twin.state.index == state.index and other.cancel():
                    flights.pop(other)
                    if twin.speculative:
                        events.append(
                            RecoveryEvent(
                                "speculative_loss",
                                partition=state.unit.partition,
                                tier=tier,
                            )
                        )
        if policy.speculate and flights:
            _maybe_speculate(
                tier, flights, results, policy, events, clock, durations, launch
            )


def _maybe_speculate(
    tier: str,
    flights: dict,
    results: dict[int, object],
    policy,
    events: list,
    clock,
    durations: list[float],
    launch,
) -> None:
    """Launch duplicates for units running far past the median."""
    if len(durations) < policy.min_speculation_samples:
        return
    median = sorted(durations)[len(durations) // 2]
    threshold = max(
        policy.speculative_multiplier * median,
        policy.speculative_floor_seconds,
    )
    now = clock()
    for flight in list(flights.values()):
        state = flight.state
        if (
            flight.speculative
            or state.speculated
            or state.index in results
            or now - flight.started_at < threshold
        ):
            continue
        state.speculated = True
        events.append(
            RecoveryEvent(
                "speculative_launch",
                partition=state.unit.partition,
                tier=tier,
            )
        )
        # The duplicate runs as the next unit-level attempt, so an
        # attempt-1 stall (or kill) does not refire on it.
        launch(state, state.crashes + 1, True)


def _harvest(flights: dict, results: dict[int, object]) -> None:
    """Keep every finished result a breaking pool already produced."""
    for future, flight in flights.items():
        if not future.done() or future.cancelled():
            continue
        try:
            outcome = future.result()
        except Exception:
            continue
        if flight.state.index not in results:
            results[flight.state.index] = outcome
