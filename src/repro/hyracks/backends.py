"""Pluggable execution backends: real multi-core partition execution.

The paper's headline claim is *parallel* scalable JSON processing —
partitioned Hyracks jobs running one plan instance per partition
concurrently.  This module supplies the execution layer that makes the
partitions actually run in parallel:

- :class:`SequentialBackend` — one partition after another in the
  calling thread (the default; today's exact behaviour);
- :class:`ThreadBackend` — partitions on a ``ThreadPoolExecutor``
  (I/O-bound scans overlap; CPU-bound parsing is still GIL-limited);
- :class:`ProcessBackend` — partitions on a
  ``concurrent.futures.ProcessPoolExecutor``, one OS process per
  worker, which is the configuration that actually uses multiple cores
  for the pure-Python parser.

Every partition's work travels as a picklable :class:`WorkUnit`
(serialized plan + data source + partition id + resilience config) and
comes back as a :class:`PartitionOutcome` carrying that partition's own
:class:`~repro.hyracks.executor.ExecutionStats`, memory peak, and
:class:`~repro.resilience.report.DegradationReport`.  The coordinator
(:class:`~repro.hyracks.executor.PartitionedExecutor`) merges outcomes
**in partition order**, so results, stats, and degradation reports are
byte-identical across all three backends — including under injected
faults, retries, and ``skip_partition`` degradation.

Worker *loss* is handled one layer up, in
:mod:`~repro.hyracks.recovery`: when a
:class:`~repro.resilience.policies.RecoveryPolicy` is enabled (the
default), a dead process-pool worker no longer aborts the query — the
pool is rebuilt, only unfinished units are rescheduled (with a bounded
attempt budget), repeated loss steps the backend down the
process→thread→sequential ladder, and a watchdog launches speculative
duplicates for stragglers.  With recovery disabled, the pre-recovery
behaviour returns: ``BrokenProcessPool`` becomes a terminal
:class:`~repro.errors.BackendError`.

Two behavioural fine points:

- ``fail_fast`` errors are *returned* in the outcome rather than raised
  inside the worker, and the coordinator raises the first error in
  partition order — deterministic even when several partitions fail
  concurrently;
- under :class:`ProcessBackend` each worker mutates its own *copy* of
  the data source, so transient-fault attempt counters on a shared
  :class:`~repro.resilience.faults.FaultPlan` do not accumulate in the
  parent process across queries (call ``plan.reset()`` between runs,
  as the sequential backend also requires for repeatability).
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from dataclasses import dataclass, field

from repro.errors import (
    BackendError,
    FileScanError,
    PartitionExecutionError,
    QueryCancelledError,
    QueryTimeoutError,
    ReproError,
    WorkerCrashError,
)
from repro.algebra.context import EvaluationContext
from repro.algebra.operators import Aggregate, DataScan, GroupBy, Join, Operator
from repro.algebra.plan import LogicalPlan
from repro.hyracks.aggregates import make_accumulators
from repro.hyracks.memory import MemoryTracker
from repro.hyracks.operators import (
    canonical_key,
    execute,
    hash_join,
    join_key,
    run_chain,
    run_plan,
)
from repro.hyracks.recovery import (
    mark_pool_worker,
    recovery_policy_for,
    run_unit_with_crash_retry,
    run_units_with_recovery,
    simulate_worker_kill,
)
from repro.hyracks.spill import stable_bucket

# BackendError and WorkerCrashError live in repro.errors with the rest of
# the hierarchy; imported (not just used) here because this module is
# their historical home and callers import them from it.


# ---------------------------------------------------------------------------
# Work descriptions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PipelinedWork:
    """One full plan instance over the worker's partition."""

    plan: LogicalPlan

    def __call__(self, ctx: EvaluationContext):
        return run_plan(self.plan, ctx)


@dataclass(frozen=True)
class GroupTableWork:
    """Partition-local GROUP-BY: fold tuples into a partials table.

    Returns ``{key: (key_values, [partial, ...])}`` — plain picklable
    partial states rather than accumulator objects, so the table ships
    cleanly across process workers even when a spilling
    ``SequenceAccumulator`` held its items in run files.
    """

    group_by: GroupBy

    def __call__(self, ctx: EvaluationContext):
        from repro.hyracks.spill import GROUP_ENTRY_BYTES, fold_group_table

        nested = self.group_by.nested_root
        key_exprs = [expr for _, expr in self.group_by.keys]
        source = execute(self.group_by.input_op, ctx)
        if ctx.profile is not None:
            source = ctx.profile.count_input(self.group_by, source)
        table = fold_group_table(
            key_exprs, nested.specs, source, ctx, op=self.group_by
        )
        if ctx.profile is not None:
            ctx.profile.add(self.group_by, "groups", len(table))
        out: dict = {}
        for key, (key_values, accumulators) in table.items():
            partials = [acc.partial() for acc in accumulators]
            for acc in accumulators:
                release = getattr(acc, "release_charges", None)
                if release is not None:
                    release(ctx)
            out[key] = (key_values, partials)
        if ctx.memory is not None:
            ctx.memory.release(GROUP_ENTRY_BYTES * len(table))
        return out


@dataclass(frozen=True)
class TupleStreamWork:
    """Materialize a subplan's raw tuples (the two-step-disabled path)."""

    op: Operator

    def __call__(self, ctx: EvaluationContext):
        return list(execute(self.op, ctx))


@dataclass(frozen=True)
class FoldPartialsWork:
    """Global aggregate: fold a partition into accumulator partials."""

    aggregate: Aggregate

    def __call__(self, ctx: EvaluationContext):
        accumulators = make_accumulators(self.aggregate.specs)
        limits = ctx.limits
        for tup in execute(self.aggregate.input_op, ctx):
            if limits is not None:
                limits.checkpoint()
            for accumulator in accumulators:
                accumulator.add(tup, ctx)
        partials = [acc.partial() for acc in accumulators]
        for acc in accumulators:
            release = getattr(acc, "release_charges", None)
            if release is not None:
                release(ctx)
        return partials


def _join_side_counters(join: Join) -> tuple[str, str]:
    """(left counter, right counter) following the physical build side."""
    if join.build_side == "left":
        return "build_tuples", "probe_tuples"
    return "probe_tuples", "build_tuples"


@dataclass(frozen=True)
class ExchangeWork:
    """Join phase 1: scan both sides, hash tuples into bucket lists.

    When the join carries ``skew_keys`` (hot keys detected by the cost
    phase), those keys' buckets are split: hot *build*-side tuples are
    replicated into every bucket and hot *probe*-side tuples are spread
    round-robin, so no single bucket worker absorbs the whole hot key.
    The spread counter is per partition and follows scan order, so the
    bucket layout — and therefore the merged result — is deterministic
    on every backend.
    """

    join: Join
    left_keys: tuple
    right_keys: tuple
    buckets: int

    def __call__(self, ctx: EvaluationContext):
        local_left: list[list] = [[] for _ in range(self.buckets)]
        local_right: list[list] = [[] for _ in range(self.buckets)]
        exchanged_tuples = 0
        exchanged_bytes = 0
        from repro.hyracks.tuples import sizeof_tuple

        limits = ctx.limits
        left_counter, right_counter = _join_side_counters(self.join)
        skew = set(self.join.skew_keys)
        spread: dict = {}
        build_is_left = self.join.build_side == "left"
        for side, keys, target, counter, is_build in (
            (self.join.left, self.left_keys, local_left, left_counter,
             build_is_left),
            (self.join.right, self.right_keys, local_right, right_counter,
             not build_is_left),
        ):
            stream = execute(side, ctx)
            if ctx.profile is not None:
                stream = ctx.profile.count_into(self.join, counter, stream)
            for tup in stream:
                if limits is not None:
                    limits.checkpoint()
                # Tuples with an empty key sequence cannot join (x eq ()
                # is false) — drop them here to match hash_join.
                key = join_key(tup, list(keys), ctx, op=self.join)
                if key is None:
                    continue
                n_bytes = sizeof_tuple(tup)
                if skew and key in skew:
                    if is_build:
                        for bucket_rows in target:
                            bucket_rows.append(tup)
                        exchanged_tuples += self.buckets
                        exchanged_bytes += n_bytes * self.buckets
                    else:
                        turn = spread.get(key, 0)
                        spread[key] = turn + 1
                        bucket = (
                            stable_bucket(key, self.buckets) + turn
                        ) % self.buckets
                        target[bucket].append(tup)
                        exchanged_tuples += 1
                        exchanged_bytes += n_bytes
                    continue
                target[stable_bucket(key, self.buckets)].append(tup)
                exchanged_tuples += 1
                exchanged_bytes += n_bytes
        return local_left, local_right, exchanged_tuples, exchanged_bytes


@dataclass(frozen=True)
class BroadcastScanWork:
    """Join phase 1 (broadcast exchange): no hash partitioning at all.

    The partition's tuples of the *local* (big) side stay where they
    were scanned — bucket index = partition index, zero exchange cost —
    while the *broadcast* (tiny) side's tuples are returned for the
    coordinator to replicate into every bucket.  Empty-key tuples are
    dropped on both sides, exactly like the hash exchange, so results
    are byte-identical with ``exchange="hash"``.
    """

    join: Join
    left_keys: tuple
    right_keys: tuple

    def __call__(self, ctx: EvaluationContext):
        from repro.hyracks.tuples import sizeof_tuple

        limits = ctx.limits
        left_counter, right_counter = _join_side_counters(self.join)
        broadcast_left = self.join.exchange == "broadcast-left"
        local_rows: list = []
        broadcast_rows: list = []
        broadcast_bytes = 0
        for side, keys, counter, is_broadcast in (
            (self.join.left, self.left_keys, left_counter, broadcast_left),
            (self.join.right, self.right_keys, right_counter,
             not broadcast_left),
        ):
            stream = execute(side, ctx)
            if ctx.profile is not None:
                stream = ctx.profile.count_into(self.join, counter, stream)
            for tup in stream:
                if limits is not None:
                    limits.checkpoint()
                key = join_key(tup, list(keys), ctx, op=self.join)
                if key is None:
                    continue
                if is_broadcast:
                    broadcast_rows.append(tup)
                    broadcast_bytes += sizeof_tuple(tup)
                else:
                    local_rows.append(tup)
        return local_rows, broadcast_rows, broadcast_bytes


@dataclass(frozen=True)
class JoinBucketWork:
    """Join phase 2: join one bucket locally, optionally fold a partial."""

    left_rows: tuple
    right_rows: tuple
    left_keys: tuple
    right_keys: tuple
    residual: object
    mid_ops: tuple
    aggregate: Aggregate | None
    build_side: str = "right"

    def __call__(self, ctx: EvaluationContext):
        joined = hash_join(
            iter(self.left_rows),
            iter(self.right_rows),
            list(self.left_keys),
            list(self.right_keys),
            self.residual,
            ctx,
            build_side=self.build_side,
        )
        stream = run_chain(list(self.mid_ops), joined, ctx)
        if self.aggregate is not None:
            accumulators = make_accumulators(self.aggregate.specs)
            limits = ctx.limits
            for tup in stream:
                if limits is not None:
                    limits.checkpoint()
                for accumulator in accumulators:
                    accumulator.add(tup, ctx)
            partials = [acc.partial() for acc in accumulators]
            for acc in accumulators:
                release = getattr(acc, "release_charges", None)
                if release is not None:
                    release(ctx)
            return partials
        return list(stream)


# ``stable_bucket`` (the process-stable CRC32 bucket hash used by the
# exchange) now lives in repro.hyracks.spill, shared with the spilling
# operators' partition-and-recurse logic; imported above and re-exported
# here for existing callers.


# ---------------------------------------------------------------------------
# Work units and outcomes
# ---------------------------------------------------------------------------


@dataclass
class WorkUnit:
    """Everything one partition's worker needs, picklable end to end."""

    plan: LogicalPlan
    partition: int
    work: object  # one of the *Work callables above
    source: object
    functions: object | None
    memory_budget: int | None
    resilience: object
    charge_delay: bool = True
    #: ProfileConfig, or None for unprofiled execution.  The worker
    #: builds its own ProfileCollector over the (pickled) plan; operator
    #: identity survives the round trip because plan and work pickle
    #: together, so profile indices match the coordinator's.
    profile: object = None
    #: SpillConfig, or None to keep the raising memory-budget behaviour.
    #: The worker builds a fresh SpillManager per attempt and closes it
    #: (removing every run file) no matter how the attempt ended.
    spill: object = None
    #: ExecutionLimits (deadline + cancellation token), or None.
    limits: object = None
    #: Unit-level attempts already consumed by crashed workers.  The
    #: recovery layer bumps this when it reschedules a crashed unit, so
    #: kill/stall faults keyed on the global attempt number
    #: (offset + in-worker attempt) fire exactly once even though a
    #: fresh worker process holds fresh copies of everything.
    attempt_offset: int = 0
    #: Directory where a worker dying to an injected kill drops its
    #: crash sentinel (set by the recovery layer, None otherwise).
    crash_log_dir: str | None = None


@dataclass
class PartitionOutcome:
    """What one partition's worker produced and measured.

    ``value`` is the work product (None when skipped or failed);
    ``error`` carries the wrapped ``fail_fast`` error — or a raw
    query-global :class:`~repro.errors.QueryTimeoutError` /
    :class:`~repro.errors.QueryCancelledError` — instead of raising in
    the worker, so the coordinator can surface failures in deterministic
    partition order.
    """

    partition: int
    value: object = None
    skipped: bool = False
    measured_seconds: float = 0.0
    injected_seconds: float = 0.0
    peak_memory_bytes: int = 0
    stats: object = None
    report: object = None
    error: Exception | None = None
    #: plain-dict ProfileCollector snapshot (None when unprofiled)
    profile: object = None


def _scan_collections(plan: LogicalPlan) -> tuple[str, ...]:
    """The collection names a plan scans, sorted for determinism."""
    return tuple(
        sorted({scan.collection for scan in plan.operators_of(DataScan)})
    )


def _wrap_partition_error(
    plan: LogicalPlan, partition: int, attempts: int, error: Exception
) -> PartitionExecutionError:
    file_path = None
    node: Exception | None = error
    while node is not None:
        if isinstance(node, FileScanError):
            file_path = node.file_path
            break
        node = node.__cause__
    wrapped = PartitionExecutionError(
        partition,
        error,
        collections=_scan_collections(plan),
        file_path=file_path,
        attempts=attempts,
    )
    wrapped.__cause__ = error
    return wrapped


def execute_work_unit(unit: WorkUnit) -> PartitionOutcome:
    """Run one partition's work under its resilience policy.

    This is the function every backend ultimately calls — in the calling
    thread, on a pool thread, or in a worker process.  It owns the whole
    retry/skip loop so a partition's attempts never straddle workers,
    and gives the partition its own stats, memory tracker, and
    degradation report for deterministic coordinator-side merging.
    """
    from repro.hyracks.executor import ExecutionStats
    from repro.resilience.report import DegradationReport

    stats = ExecutionStats()
    report = DegradationReport()
    source = unit.source
    config = unit.resilience
    attach = getattr(source, "attach_degradation", None)
    if attach is not None:
        attach(report)
    delay_hook = (
        getattr(source, "injected_delay", None) if unit.charge_delay else None
    )
    measured = 0.0
    injected = 0.0
    peak = 0
    attempts = 0
    collector = None
    spill_hook = getattr(source, "check_spill_fault", None)
    kill_hook = getattr(source, "check_worker_kill", None)
    stall_hook = getattr(source, "injected_stall", None)
    try:
        while True:
            attempts += 1
            # Crash/stall faults key on the unit-level attempt (offset +
            # in-worker attempt) and run *outside* the try below: an
            # injected worker death must reach the recovery layer, not
            # the partition retry policy.
            unit_attempt = unit.attempt_offset + attempts
            if kill_hook is not None:
                kill_message = kill_hook(unit.partition, unit_attempt)
                if kill_message is not None:
                    simulate_worker_kill(unit, unit_attempt, kill_message)
            if stall_hook is not None:
                stall = stall_hook(unit.partition, unit_attempt)
                if stall > 0:
                    time.sleep(stall)
            memory = MemoryTracker(unit.memory_budget, context="query execution")
            if unit.profile is not None:
                # A fresh collector per attempt (like the fresh memory
                # tracker): retried attempts do not leak half-executed
                # counters into the reported profile.
                from repro.observability.profile import ProfileCollector

                collector = ProfileCollector(unit.plan, unit.profile)
            spill_manager = None
            if unit.spill is not None:
                from repro.hyracks.spill import SpillManager

                fault_hook = None
                if spill_hook is not None:
                    partition = unit.partition
                    fault_hook = lambda: spill_hook(partition)  # noqa: E731
                spill_manager = SpillManager(
                    unit.spill, partition=unit.partition, fault_hook=fault_hook
                )
            ctx = EvaluationContext(
                source=source,
                functions=unit.functions,
                memory=memory,
                partition=unit.partition,
                stats=stats,
                profile=collector,
                spill=spill_manager,
                limits=unit.limits,
            )
            attempt_started = time.perf_counter()
            try:
                try:
                    if unit.limits is not None:
                        unit.limits.check()
                    value = unit.work(ctx)
                finally:
                    # Guaranteed spill cleanup: every run file of this
                    # attempt is removed on success, error, timeout, or
                    # cancellation before anything else happens.
                    if spill_manager is not None:
                        spill_manager.fold_stats(stats)
                        spill_manager.close()
            except (QueryTimeoutError, QueryCancelledError) as error:
                # Query-global limits: never retried, never skipped, and
                # returned *unwrapped* so the coordinator re-raises the
                # limit error itself in partition order.
                measured += time.perf_counter() - attempt_started
                peak = max(peak, memory.peak)
                report.record_cancellation(unit.partition, error)
                return PartitionOutcome(
                    unit.partition,
                    measured_seconds=measured,
                    injected_seconds=injected,
                    peak_memory_bytes=peak,
                    stats=stats,
                    report=report,
                    error=error,
                    profile=_snapshot(collector),
                )
            except (ReproError, OSError) as error:
                measured += time.perf_counter() - attempt_started
                peak = max(peak, memory.peak)
                if delay_hook is not None:
                    injected += delay_hook(unit.partition)
                wrapped = _wrap_partition_error(
                    unit.plan, unit.partition, attempts, error
                )
                if config.partition_policy == "fail_fast":
                    return PartitionOutcome(
                        unit.partition,
                        measured_seconds=measured,
                        injected_seconds=injected,
                        peak_memory_bytes=peak,
                        stats=stats,
                        report=report,
                        error=wrapped,
                        profile=_snapshot(collector),
                    )
                retryable = getattr(error, "retryable", True)
                if (
                    config.partition_policy == "retry"
                    and retryable
                    and attempts < config.retry.max_attempts
                ):
                    backoff = config.retry.backoff_seconds(attempts)
                    injected += backoff
                    report.record_retry(unit.partition, attempts, backoff, error)
                    continue
                if (
                    config.partition_policy == "skip_partition"
                    or config.on_exhausted == "skip"
                ):
                    report.record_skipped_partition(
                        unit.partition,
                        _scan_collections(unit.plan),
                        attempts,
                        error,
                    )
                    return PartitionOutcome(
                        unit.partition,
                        skipped=True,
                        measured_seconds=measured,
                        injected_seconds=injected,
                        peak_memory_bytes=peak,
                        stats=stats,
                        report=report,
                        profile=_snapshot(collector),
                    )
                return PartitionOutcome(
                    unit.partition,
                    measured_seconds=measured,
                    injected_seconds=injected,
                    peak_memory_bytes=peak,
                    stats=stats,
                    report=report,
                    error=wrapped,
                    profile=_snapshot(collector),
                )
            measured += time.perf_counter() - attempt_started
            peak = max(peak, memory.peak)
            if delay_hook is not None:
                injected += delay_hook(unit.partition)
            return PartitionOutcome(
                unit.partition,
                value=value,
                measured_seconds=measured,
                injected_seconds=injected,
                peak_memory_bytes=peak,
                stats=stats,
                report=report,
                profile=_snapshot(collector),
            )
    finally:
        if attach is not None:
            attach(None)


def _snapshot(collector) -> dict | None:
    """Picklable snapshot of a worker's profile collector (None when off)."""
    return None if collector is None else collector.data()


def _run_pickled_unit(blob: bytes) -> PartitionOutcome:
    """Process-pool entry point: unpickle and execute a work unit."""
    mark_pool_worker()
    return execute_work_unit(pickle.loads(blob))


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


def _await_settled(futures) -> None:
    """Block until every non-cancelled future in *futures* has finished."""
    from concurrent.futures import wait as _wait

    pending = [future for future in futures if not future.cancelled()]
    if pending:
        _wait(pending)


class ExecutionBackend:
    """Interface: execute work units, yield outcomes in submission order."""

    name = "abstract"

    def __init__(self):
        #: RecoveryEvents accumulated by the crash-recovery layer while
        #: running units; the executor drains them into the query's
        #: stats and degradation report after each map phase.
        self._recovery_events: list = []

    def run_units(self, units: list[WorkUnit]):
        raise NotImplementedError

    def drain_recovery_events(self) -> list:
        """Return and clear the recovery events of the last run."""
        events = list(self._recovery_events)
        self._recovery_events.clear()
        return events

    def close(self) -> None:
        """Release pooled workers (no-op for poolless backends)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class SequentialBackend(ExecutionBackend):
    """One partition after another in the calling thread (the default).

    Lazily yields outcomes, so a ``fail_fast`` error on partition *i*
    means partitions *i+1..n* never execute — exactly the pre-backend
    behaviour.  Injected worker kills are absorbed by the same
    crash-retry loop the pooled backends use, so recovery semantics
    (attempt budget, worker-loss events) match across backends.
    """

    name = "sequential"

    def __init__(self, max_workers: int | None = None):
        super().__init__()
        del max_workers  # accepted for interface symmetry

    def run_units(self, units: list[WorkUnit]):
        for unit in units:
            policy = getattr(unit.resilience, "recovery", None)
            yield run_unit_with_crash_retry(
                unit, policy, self._recovery_events
            )


class ThreadBackend(ExecutionBackend):
    """Partitions on a shared ``ThreadPoolExecutor``.

    The GIL serializes the pure-Python parsing, so this backend mostly
    overlaps file I/O; it exists as the cheap middle ground (no pickling
    of work units or results) and as a stepping stone for the tests'
    three-way parity checks.
    """

    name = "thread"

    #: ladder the recovery engine walks after repeated worker loss
    recovery_tiers = ("thread", "sequential")

    def __init__(self, max_workers: int | None = None):
        super().__init__()
        self._max_workers = max_workers or os.cpu_count() or 1
        self._pool = None
        self._pool_lock = threading.Lock()

    def _ensure_pool(self):
        # Lazy creation is locked: two service threads racing here would
        # otherwise each build a pool and leak one of them.
        with self._pool_lock:
            if self._pool is None:
                from concurrent.futures import ThreadPoolExecutor

                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="repro-partition",
                )
            return self._pool

    def run_units(self, units: list[WorkUnit]):
        units = list(units)
        if len(units) <= 1 or self._max_workers <= 1:
            for unit in units:
                policy = getattr(unit.resilience, "recovery", None)
                yield run_unit_with_crash_retry(
                    unit, policy, self._recovery_events
                )
            return
        policy = recovery_policy_for(units)
        if policy is not None and policy.enabled:
            yield from run_units_with_recovery(
                units,
                host=self,
                tiers=self.recovery_tiers,
                max_workers=self._max_workers,
                events=self._recovery_events,
            )
            return
        pool = self._ensure_pool()
        futures = [pool.submit(execute_work_unit, unit) for unit in units]
        try:
            for future in futures:
                yield future.result()
        finally:
            # Deterministic cleanup: cancel what never started, then
            # wait out what did, so no orphaned partition work (or its
            # thread-local report attachment) outlives the query.
            for future in futures:
                future.cancel()
            _await_settled(futures)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessBackend(ExecutionBackend):
    """Partitions on a ``ProcessPoolExecutor`` — real multi-core execution.

    Work units are pickled up front (one clear :class:`BackendError`
    instead of an opaque pool crash when a source or function library is
    not picklable) and executed by ``_run_pickled_unit`` in the worker.
    The pool persists across queries so fork/spawn cost is paid once.
    """

    name = "process"

    #: ladder the recovery engine walks after repeated pool loss
    recovery_tiers = ("process", "thread", "sequential")

    def __init__(self, max_workers: int | None = None):
        super().__init__()
        self._max_workers = max_workers or os.cpu_count() or 1
        self._pool = None
        self._pool_lock = threading.Lock()

    def _ensure_pool(self):
        # Locked like ThreadBackend._ensure_pool: racing lazy creation
        # would leak a whole process pool.
        with self._pool_lock:
            if self._pool is None:
                import multiprocessing
                from concurrent.futures import ProcessPoolExecutor

                try:
                    mp_context = multiprocessing.get_context("fork")
                except ValueError:  # pragma: no cover - non-POSIX platforms
                    mp_context = multiprocessing.get_context()
                self._pool = ProcessPoolExecutor(
                    max_workers=self._max_workers, mp_context=mp_context
                )
            return self._pool

    def run_units(self, units: list[WorkUnit]):
        units = list(units)
        policy = recovery_policy_for(units)
        if policy is not None and policy.enabled:
            yield from run_units_with_recovery(
                units,
                host=self,
                tiers=self.recovery_tiers,
                max_workers=self._max_workers,
                events=self._recovery_events,
            )
            return
        blobs = []
        for unit in units:
            try:
                blobs.append(pickle.dumps(unit))
            except Exception as error:
                raise BackendError(
                    f"work unit for partition {unit.partition} is not "
                    f"picklable under the process backend ({error}); use "
                    "backend='thread' or 'sequential', or make the data "
                    "source and function library picklable",
                    cause=error,
                ) from error
        pool = self._ensure_pool()
        from concurrent.futures.process import BrokenProcessPool

        futures = [pool.submit(_run_pickled_unit, blob) for blob in blobs]
        try:
            for future in futures:
                try:
                    yield future.result()
                except BrokenProcessPool as error:
                    self.close()
                    raise BackendError(
                        "process pool worker died while executing a "
                        "partition; results are incomplete",
                        cause=error,
                    ) from error
        finally:
            # Deterministic cleanup: cancel what never started, then
            # wait out what did, so no orphaned partition work survives
            # an early exit from this generator.
            for future in futures:
                future.cancel()
            _await_settled(futures)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


BACKENDS = {
    "sequential": SequentialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def resolve_backend(backend=None, max_workers: int | None = None):
    """Turn a backend name (or instance, or None) into a backend.

    ``None`` consults the ``REPRO_BACKEND`` environment variable and
    falls back to ``sequential`` — which is how CI runs the whole test
    suite under the process backend without touching any call site.
    ``REPRO_BACKEND=""`` explicitly selects the default backend (see
    :mod:`repro.envutil` for the resolution rule).
    """
    if backend is None:
        from repro.envutil import env_setting

        backend = env_setting("REPRO_BACKEND") or "sequential"
    if isinstance(backend, str):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of "
                f"{sorted(BACKENDS)} or an ExecutionBackend instance"
            )
        return BACKENDS[backend](max_workers=max_workers)
    if max_workers is not None:
        raise ValueError(
            "max_workers applies only when the backend is given by name"
        )
    return backend
