"""Hyracks substrate: frames, physical operators, executor, cluster model.

This package stands in for the Hyracks dataflow runtime of the paper's
architecture (Section 3.1): tuple streams move through pull-based
physical operators; exchange boundaries serialize tuples into fixed-size
frames; memory is tracked and can be budgeted; and a simulated cluster
places partitions on (node, core, hyperthread) slots to compose a
makespan from really-measured per-partition work.
"""

from repro.hyracks.backends import (
    ExecutionBackend,
    ProcessBackend,
    SequentialBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.hyracks.cluster import ClusterSpec
from repro.hyracks.memory import MemoryTracker

__all__ = [
    "ClusterSpec",
    "ExecutionBackend",
    "MemoryTracker",
    "ProcessBackend",
    "SequentialBackend",
    "ThreadBackend",
    "resolve_backend",
]
