"""Data substrate: synthetic NOAA-like sensor data and collection catalogs.

The paper evaluates on the GHCN-Daily dataset converted to JSON (Listing
6): files holding one ``root`` array whose members pair a ``metadata``
object with a ``results`` array of measurements.  We cannot ship the
803 GB NOAA dump, so :mod:`repro.data.generator` produces deterministic
synthetic files with the same schema and the same knobs the experiments
vary (file size, partition size, measurements per array).

:mod:`repro.data.catalog` manages partitioned collections on disk and
implements the :class:`~repro.algebra.context.DataSource` protocol the
runtime scans through.
"""

from repro.data.catalog import CollectionCatalog, InMemorySource
from repro.data.generator import SensorDataConfig, write_sensor_collection

__all__ = [
    "CollectionCatalog",
    "InMemorySource",
    "SensorDataConfig",
    "write_sensor_collection",
]
