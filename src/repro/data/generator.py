"""Deterministic generator for GHCN-like JSON sensor data.

Produces files with the structure of the paper's Listing 6::

    {
      "root": [
        {
          "metadata": {"count": N},
          "results": [
            {"date": "20131225T00:00", "dataType": "TMIN",
             "station": "GSW000123", "value": 4},
            ...
          ]
        },
        ...
      ]
    }

Each ``results`` array holds the measurements of one station over a run
of consecutive days, with the configured data types cycling within each
day — so every (station, date) that has a TMIN also has a TMAX, giving
Q2's self-join real matches.  ``measurements_per_array`` is the document
size knob of Figure 18/Table 1 (30 = "one month per document" down to
1 = "one measurement per document").

Everything is seeded: the same configuration always produces the same
bytes, so benchmark runs are reproducible.
"""

from __future__ import annotations

import datetime
import os
import random
from dataclasses import dataclass, replace

from repro.jsonlib.items import Item
from repro.jsonlib.serializer import dumps

_DEFAULT_TYPES = ("TMIN", "TMAX", "WIND", "PRCP")

_VALUE_RANGES = {
    "TMIN": (-200, 150),
    "TMAX": (0, 400),
    "WIND": (0, 120),
    "PRCP": (0, 500),
}


@dataclass(frozen=True)
class SensorDataConfig:
    """Knobs for the synthetic sensor dataset.

    ``measurements_per_array`` is the Figure 18 document-size knob;
    ``target_file_bytes`` the file-size knob (the paper's files are
    10 MB-2 GB; scaled runs use KB-MB sizes).
    """

    seed: int = 7
    stations: int = 200
    start_year: int = 2000
    year_span: int = 15
    measurements_per_array: int = 30
    data_types: tuple[str, ...] = _DEFAULT_TYPES
    target_file_bytes: int = 64 * 1024

    def with_measurements(self, measurements: int) -> "SensorDataConfig":
        """The same configuration with a different array size."""
        return replace(self, measurements_per_array=measurements)


def _station_id(rng: random.Random, config: SensorDataConfig) -> str:
    return f"GSW{rng.randrange(config.stations):06d}"


def _random_base_date(rng: random.Random, config: SensorDataConfig):
    year = config.start_year + rng.randrange(config.year_span)
    # Day-of-year keeps every date valid and spreads Dec 25 hits evenly.
    day_of_year = rng.randrange(365)
    return datetime.date(year, 1, 1) + datetime.timedelta(days=day_of_year)


def generate_record(rng: random.Random, config: SensorDataConfig) -> Item:
    """One ``{"metadata": ..., "results": [...]}`` member of ``root``.

    The results array covers consecutive days for a single station; all
    configured data types cycle within each day.
    """
    station = _station_id(rng, config)
    base = _random_base_date(rng, config)
    types = config.data_types
    results = []
    for index in range(config.measurements_per_array):
        date = base + datetime.timedelta(days=index // len(types))
        data_type = types[index % len(types)]
        low, high = _VALUE_RANGES.get(data_type, (0, 100))
        results.append(
            {
                "date": f"{date.year:04d}{date.month:02d}{date.day:02d}T00:00",
                "dataType": data_type,
                "station": station,
                "value": rng.randrange(low, high) / 10.0,
            }
        )
    return {"metadata": {"count": len(results)}, "results": results}


def generate_file_text(
    rng: random.Random, config: SensorDataConfig, wrapped: bool = True
) -> str:
    """One sensor file's JSON text, close to ``target_file_bytes`` long.

    ``wrapped`` (the default) produces the paper's Listing 6 shape: one
    ``{"root": [...]}`` envelope per file.  Unwrapped files hold the
    member documents as concatenated top-level values — the structure
    the paper prepares for MongoDB/AsterixDB in Section 5.3 ("we first
    unwrapped all the JSON items inside root").
    """
    records = []
    size = 12  # the {"root": []} envelope
    while size < config.target_file_bytes:
        record = generate_record(rng, config)
        records.append(record)
        size += len(dumps(record)) + 2
    if wrapped:
        return dumps({"root": records})
    return "\n".join(dumps(record) for record in records)


def write_sensor_collection(
    base_dir: str,
    name: str,
    partitions: int,
    bytes_per_partition: int,
    config: SensorDataConfig | None = None,
    wrapped: bool = True,
) -> str:
    """Write a partitioned sensor collection under ``base_dir/name``.

    Layout: ``<base_dir>/<name>/partition<i>/sensor<j>.json``; each
    partition directory holds roughly ``bytes_per_partition`` of data.
    Returns the collection directory.
    """
    if config is None:
        config = SensorDataConfig()
    collection_dir = os.path.join(base_dir, name.strip("/"))
    for partition in range(partitions):
        partition_dir = os.path.join(collection_dir, f"partition{partition}")
        os.makedirs(partition_dir, exist_ok=True)
        rng = random.Random(config.seed * 1_000_003 + partition)
        written = 0
        index = 0
        while written < bytes_per_partition:
            text = generate_file_text(rng, config, wrapped=wrapped)
            path = os.path.join(partition_dir, f"sensor{index:04d}.json")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
            written += len(text)
            index += 1
    return collection_dir


def generate_bookstore_document() -> Item:
    """The paper's Listing 1 bookstore document (used by examples/tests)."""
    return {
        "bookstore": {
            "book": [
                {
                    "-category": "COOKING",
                    "title": "Everyday Italian",
                    "author": "Giada De Laurentiis",
                    "year": "2005",
                    "price": "30.00",
                },
                {
                    "-category": "CHILDREN",
                    "title": "Harry Potter",
                    "author": "J K. Rowling",
                    "year": "2005",
                    "price": "29.99",
                },
                {
                    "-category": "WEB",
                    "title": "XQuery Kick Start",
                    "author": "James McGovern",
                    "year": "2003",
                    "price": "49.99",
                },
                {
                    "-category": "WEB",
                    "title": "Learning XML",
                    "author": "Erik T. Ray",
                    "year": "2003",
                    "price": "39.95",
                },
            ]
        }
    }
