"""Collection catalogs: partitioned data sources for the runtime.

A :class:`CollectionCatalog` maps collection names (the strings queries
pass to ``collection("...")``) to partitioned directories of JSON files
and implements the :class:`~repro.algebra.context.DataSource` protocol:

- ``read_collection`` materializes every item (the naive strategy the
  un-rewritten plans use),
- ``scan_collection`` streams items through the projecting parser (the
  DATASCAN strategy),
- ``partition_count`` drives partitioned-parallel execution.

:class:`InMemorySource` provides the same protocol over in-memory JSON
texts, for tests and small examples.
"""

from __future__ import annotations

import os
from typing import Iterator

from repro.errors import ReproError
from repro.jsonlib.items import Item
from repro.jsonlib.parser import parse, parse_many
from repro.jsonlib.path import Path
from repro.jsonlib.projection import project_file
from repro.jsonlib.textscan import scan_file, scan_text


class CollectionCatalog:
    """Registry of partitioned on-disk collections.

    Collections register explicitly (``register``) or are discovered from
    a base directory whose layout is
    ``<base>/<collection>/partition<i>/*.json``.
    """

    def __init__(self, base_dir: str | None = None):
        self._collections: dict[str, list[list[str]]] = {}
        if base_dir is not None:
            self.discover(base_dir)

    # -- registration ----------------------------------------------------------

    def register(self, name: str, partitions: list[list[str]]) -> None:
        """Register a collection as an explicit list of partition file lists."""
        self._collections[self._normalize(name)] = [
            list(files) for files in partitions
        ]

    def register_directory(self, name: str, directory: str) -> None:
        """Register ``directory`` (with ``partition<i>`` subdirs) as *name*.

        A directory holding JSON files directly becomes one partition.
        """
        partition_dirs = sorted(
            entry.path
            for entry in os.scandir(directory)
            if entry.is_dir() and entry.name.startswith("partition")
        )
        if not partition_dirs:
            partition_dirs = [directory]
        partitions = [
            sorted(
                os.path.join(partition_dir, file_name)
                for file_name in os.listdir(partition_dir)
                if file_name.endswith(".json")
            )
            for partition_dir in partition_dirs
        ]
        self.register(name, partitions)

    def discover(self, base_dir: str) -> None:
        """Register every ``<base>/<collection>`` subdirectory."""
        for entry in os.scandir(base_dir):
            if entry.is_dir():
                self.register_directory("/" + entry.name, entry.path)

    @staticmethod
    def _normalize(name: str) -> str:
        return "/" + name.strip("/")

    def _partitions(self, name: str) -> list[list[str]]:
        key = self._normalize(name)
        if key not in self._collections:
            raise ReproError(f"unknown collection {name!r}")
        return self._collections[key]

    # -- DataSource protocol ----------------------------------------------------

    def partition_count(self, name: str) -> int:
        """Number of partitions of a collection."""
        return len(self._partitions(name))

    def files(self, name: str, partition: int | None = None) -> list[str]:
        """File paths of one partition (or all of them)."""
        partitions = self._partitions(name)
        if partition is None:
            return [path for files in partitions for path in files]
        return list(partitions[partition])

    def total_bytes(self, name: str, partition: int | None = None) -> int:
        """On-disk size of a collection (or one partition)."""
        return sum(os.path.getsize(path) for path in self.files(name, partition))

    def read_document(self, uri: str) -> Item:
        """Materialize a single JSON document by file path."""
        with open(uri, "r", encoding="utf-8") as handle:
            return parse(handle.read())

    def read_collection(self, name: str, partition: int | None = None) -> list[Item]:
        """Materialize every top-level item of the collection."""
        items: list[Item] = []
        for path in self.files(name, partition):
            with open(path, "r", encoding="utf-8") as handle:
                items.extend(parse_many(handle.read()))
        return items

    def scan_collection(
        self, name: str, path: Path, partition: int | None = None
    ) -> Iterator[Item]:
        """Stream the collection's items projected through *path*.

        Uses the fast raw-text scanner (memory bounded by the largest
        file); :meth:`stream_collection` offers the chunked event-based
        projector when even one file must not be held in memory.
        """
        for file_path in self.files(name, partition):
            yield from scan_file(file_path, path)

    def stream_collection(
        self, name: str, path: Path, partition: int | None = None
    ) -> Iterator[Item]:
        """Chunked event-based projection (memory bounded by chunk size)."""
        for file_path in self.files(name, partition):
            yield from project_file(file_path, path)


class InMemorySource:
    """DataSource over in-memory JSON texts (tests, small examples).

    ``collections`` maps names to lists of partitions, each partition a
    list of JSON texts; ``documents`` maps URIs to JSON texts.
    """

    def __init__(
        self,
        collections: dict[str, list[list[str]]] | None = None,
        documents: dict[str, str] | None = None,
    ):
        self._collections = {
            CollectionCatalog._normalize(name): partitions
            for name, partitions in (collections or {}).items()
        }
        self._documents = dict(documents or {})

    def add_document(self, uri: str, text: str) -> None:
        """Register a document text under *uri*."""
        self._documents[uri] = text

    def add_collection(self, name: str, partitions: list[list[str]]) -> None:
        """Register a collection of JSON-text partitions."""
        self._collections[CollectionCatalog._normalize(name)] = partitions

    def _texts(self, name: str, partition: int | None) -> list[str]:
        key = CollectionCatalog._normalize(name)
        if key not in self._collections:
            raise ReproError(f"unknown collection {name!r}")
        partitions = self._collections[key]
        if partition is None:
            return [text for texts in partitions for text in texts]
        return list(partitions[partition])

    def partition_count(self, name: str) -> int:
        key = CollectionCatalog._normalize(name)
        if key not in self._collections:
            raise ReproError(f"unknown collection {name!r}")
        return len(self._collections[key])

    def read_document(self, uri: str) -> Item:
        if uri not in self._documents:
            raise ReproError(f"unknown document {uri!r}")
        return parse(self._documents[uri])

    def read_collection(self, name: str, partition: int | None = None) -> list[Item]:
        items: list[Item] = []
        for text in self._texts(name, partition):
            items.extend(parse_many(text))
        return items

    def scan_collection(
        self, name: str, path: Path, partition: int | None = None
    ) -> Iterator[Item]:
        for text in self._texts(name, partition):
            yield from scan_text(text, path)
