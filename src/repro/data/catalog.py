"""Collection catalogs: partitioned data sources for the runtime.

A :class:`CollectionCatalog` maps collection names (the strings queries
pass to ``collection("...")``) to partitioned directories of JSON files
and implements the :class:`~repro.algebra.context.DataSource` protocol:

- ``read_collection`` materializes every item (the naive strategy the
  un-rewritten plans use),
- ``scan_collection`` streams items through the projecting parser (the
  DATASCAN strategy),
- ``partition_count`` drives partitioned-parallel execution.

:class:`InMemorySource` provides the same protocol over in-memory JSON
texts, for tests and small examples.

Both sources take an ``on_malformed`` policy (``fail`` | ``skip_record``
| ``skip_file``) deciding what a scan does with malformed JSON, and an
``attach_degradation`` hook the executor uses to collect the skips of
one query into its :class:`~repro.resilience.report.DegradationReport`.
"""

from __future__ import annotations

import os
import threading
from typing import Iterator

from repro.cache.config import (
    resolve_fingerprint_mode,
    resolve_scan_mode,
    resolve_segment_cache,
    validate_fingerprint_mode,
    validate_scan_mode,
)
from repro.cache.segments import (
    SegmentCache,
    canonical_projection,
    text_fingerprint,
)
from repro.errors import FileScanError, JsonError, ReproError
from repro.jsonlib import tape
from repro.jsonlib.items import Item
from repro.jsonlib.parser import parse, parse_many, parse_many_resilient
from repro.jsonlib.path import Path, navigate_sequence
from repro.jsonlib.projection import project_file
from repro.jsonlib.textscan import ScanCounters, scan_file, scan_text
from repro.resilience.policies import validate_on_malformed
from repro.stats.sampling import SourceStatistics

_BOM = "\ufeff"


def _eager_scan_text(
    text: str,
    path: Path,
    on_malformed: str = "fail",
    recorder=None,
    counters: ScanCounters | None = None,
) -> list[Item]:
    """Eager-mode scan: parse every record fully, then navigate.

    The pre-PR-7 baseline, kept as ``scan_mode="eager"``.  A leading
    BOM is blanked (not stripped) so recorder offsets line up with the
    skipper's.  Only ``matched`` is counted — eager parsing has no
    notion of a skipped subtree.
    """
    if text.startswith(_BOM):
        text = " " + text[1:]
    if on_malformed == "skip_record":
        records = parse_many_resilient(
            text, on_malformed="skip_record", recorder=recorder
        )
    else:
        records = parse_many(text)
    projected = navigate_sequence(records, path)
    if counters is not None:
        counters.matched += len(projected)
    return projected


def _eager_scan_file(
    file_path: str,
    path: Path,
    on_malformed: str = "fail",
    recorder=None,
    counters: ScanCounters | None = None,
) -> list[Item]:
    """File twin of :func:`_eager_scan_text` (``utf-8-sig``, like scan_file)."""
    with open(file_path, "r", encoding="utf-8-sig") as handle:
        text = handle.read()
    return _eager_scan_text(
        text, path, on_malformed=on_malformed, recorder=recorder,
        counters=counters,
    )


#: scan mode -> (file scanner, text scanner); all three produce
#: byte-identical items, errors and skip events.
_SCANNERS = {
    "ondemand": (tape.scan_file, tape.scan_text),
    "text": (scan_file, scan_text),
    "eager": (_eager_scan_file, _eager_scan_text),
}


class CollectionCatalog:
    """Registry of partitioned on-disk collections.

    Collections register explicitly (``register``) or are discovered from
    a base directory whose layout is
    ``<base>/<collection>/partition<i>/*.json``.
    """

    def __init__(
        self,
        base_dir: str | None = None,
        on_malformed: str = "fail",
        scan_mode: str | None = None,
        segment_cache_dir: str | None = None,
        fingerprint_mode: str | None = None,
        stats_sample: int | None = None,
    ):
        self._collections: dict[str, list[list[str]]] = {}
        self.on_malformed = validate_on_malformed(on_malformed)
        self.scan_mode = resolve_scan_mode(scan_mode)
        self.segment_cache = resolve_segment_cache(
            segment_cache_dir, fingerprint_mode
        )
        self.stats = SourceStatistics(stats_sample)
        self._local = threading.local()
        if base_dir is not None:
            self.discover(base_dir)

    def configure_scan(
        self,
        scan_mode: str | None = None,
        segment_cache_dir: str | None = None,
        fingerprint_mode: str | None = None,
    ) -> None:
        """Override the scan mode and/or segment cache after construction.

        ``None`` leaves a setting untouched; an empty
        ``segment_cache_dir`` string disables the cache.
        ``fingerprint_mode`` (``"stat"`` | ``"content"``) selects how
        cached segments detect file changes.
        """
        if scan_mode is not None:
            self.scan_mode = validate_scan_mode(scan_mode)
        if segment_cache_dir is not None:
            self.segment_cache = (
                SegmentCache(
                    segment_cache_dir,
                    fingerprint_mode=resolve_fingerprint_mode(fingerprint_mode),
                )
                if segment_cache_dir
                else None
            )
        elif fingerprint_mode is not None and self.segment_cache is not None:
            self.segment_cache.fingerprint_mode = validate_fingerprint_mode(
                fingerprint_mode
            )

    # -- resilience wiring -------------------------------------------------------

    @property
    def _report(self):
        return getattr(self._local, "report", None)

    @property
    def _counters(self):
        return getattr(self._local, "scan_counters", None)

    def attach_degradation(self, report) -> None:
        """Attach (or detach, with None) a degradation report.

        While attached, records and files skipped under a non-``fail``
        ``on_malformed`` policy are recorded on *report*.  The
        attachment is **per thread**, so parallel execution backends can
        give every partition worker its own report without racing.
        """
        self._local.report = report

    def attach_scan_counters(self, counters) -> None:
        """Attach (or detach, with None) projection scan counters.

        While attached, every raw-text scan accumulates its projection
        hit/skip counts on *counters* (a
        :class:`~repro.jsonlib.textscan.ScanCounters`).  Per thread,
        like :meth:`attach_degradation`.
        """
        self._local.scan_counters = counters

    def __getstate__(self):
        # The report/counters attachments are per-thread runtime state;
        # a pickled catalog (a process-backend work unit) starts detached.
        state = self.__dict__.copy()
        del state["_local"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._local = threading.local()

    def _record_skipped_record(
        self, file_path: str, offset: int | None, message: str
    ) -> None:
        if self._report is not None:
            self._report.record_skipped_record(file_path, offset, message)

    def _record_skipped_file(self, file_path: str, cause: Exception) -> None:
        if self._report is not None:
            self._report.record_skipped_file(file_path, cause)

    # -- registration ----------------------------------------------------------

    def register(self, name: str, partitions: list[list[str]]) -> None:
        """Register a collection as an explicit list of partition file lists.

        Registration invalidates the collection's sampled statistics;
        the next stats consumer re-samples the fresh data.
        """
        self._collections[self._normalize(name)] = [
            list(files) for files in partitions
        ]
        self.stats.invalidate(self._normalize(name))

    def register_directory(self, name: str, directory: str) -> None:
        """Register ``directory`` (with ``partition<i>`` subdirs) as *name*.

        A directory holding JSON files directly becomes one partition.
        Raises :class:`~repro.errors.ReproError` when any partition
        directory holds no ``*.json`` files — an empty partition would
        silently return no data from every query over it.
        """
        partition_dirs = sorted(
            entry.path
            for entry in os.scandir(directory)
            if entry.is_dir() and entry.name.startswith("partition")
        )
        if not partition_dirs:
            partition_dirs = [directory]
        partitions = []
        for partition_dir in partition_dirs:
            files = sorted(
                os.path.join(partition_dir, file_name)
                for file_name in os.listdir(partition_dir)
                if file_name.endswith(".json")
            )
            if not files:
                raise ReproError(
                    f"cannot register collection {name!r}: no *.json files "
                    f"in {partition_dir!r}"
                )
            partitions.append(files)
        self.register(name, partitions)

    def discover(self, base_dir: str) -> None:
        """Register every ``<base>/<collection>`` subdirectory.

        Raises :class:`~repro.errors.ReproError` when *base_dir* holds no
        collection subdirectories at all — a catalog discovered from an
        empty directory cannot answer any query.
        """
        found = False
        for entry in os.scandir(base_dir):
            if entry.is_dir():
                self.register_directory("/" + entry.name, entry.path)
                found = True
        if not found:
            raise ReproError(
                f"no collection directories found under {base_dir!r}"
            )

    @staticmethod
    def _normalize(name: str) -> str:
        return "/" + name.strip("/")

    def _partitions(self, name: str) -> list[list[str]]:
        key = self._normalize(name)
        if key not in self._collections:
            raise ReproError(f"unknown collection {name!r}")
        return self._collections[key]

    # -- DataSource protocol ----------------------------------------------------

    def partition_count(self, name: str) -> int:
        """Number of partitions of a collection."""
        return len(self._partitions(name))

    def files(self, name: str, partition: int | None = None) -> list[str]:
        """File paths of one partition (or all of them)."""
        partitions = self._partitions(name)
        if partition is None:
            return [path for files in partitions for path in files]
        return list(partitions[partition])

    def total_bytes(self, name: str, partition: int | None = None) -> int:
        """On-disk size of a collection (or one partition)."""
        return sum(os.path.getsize(path) for path in self.files(name, partition))

    # -- statistics --------------------------------------------------------------

    def stats_partitions(self, name: str) -> list:
        """Per-partition ``(texts, total_bytes)`` pairs for the sampler.

        *texts* lazily yields each file's content in registration order;
        unreadable files are skipped (sampling is advisory) but their
        on-disk size still counts toward the extrapolation total.
        """

        def file_texts(files: list[str]):
            for file_path in files:
                try:
                    with open(file_path, "r", encoding="utf-8-sig") as handle:
                        yield handle.read()
                except OSError:
                    continue

        out = []
        for files in self._partitions(name):
            total = 0
            for file_path in files:
                try:
                    total += os.path.getsize(file_path)
                except OSError:
                    pass
            out.append((file_texts(files), total))
        return out

    def collection_stats(self, name: str):
        """Sampled :class:`~repro.stats.sampling.CollectionStats` (or None)."""
        return self.stats.collection_stats(self, name)

    def stats_snapshot(self, names=None):
        """A :class:`~repro.stats.sampling.StatsSnapshot` over *names*.

        Defaults to every registered collection; collections that fail
        to sample are simply absent from the snapshot.
        """
        if names is None:
            names = sorted(self._collections)
        return self.stats.snapshot(self, names)

    def refresh_stats(self, name: str | None = None) -> None:
        """Drop sampled statistics so the next consumer re-samples."""
        self.stats.invalidate(name)

    def read_document(self, uri: str) -> Item:
        """Materialize a single JSON document by file path."""
        with open(uri, "r", encoding="utf-8") as handle:
            return parse(handle.read())

    def read_collection(self, name: str, partition: int | None = None) -> list[Item]:
        """Materialize every top-level item of the collection."""
        items: list[Item] = []
        for path in self.files(name, partition):
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            if self.on_malformed == "skip_record":
                items.extend(
                    parse_many_resilient(
                        text,
                        on_malformed="skip_record",
                        recorder=self._recorder(path),
                    )
                )
            elif self.on_malformed == "skip_file":
                try:
                    items.extend(parse_many(text))
                except JsonError as error:
                    self._record_skipped_file(path, error)
            else:
                try:
                    items.extend(parse_many(text))
                except JsonError as error:
                    raise FileScanError(path, error) from error
        return items

    def scan_collection(
        self, name: str, path: Path, partition: int | None = None
    ) -> Iterator[Item]:
        """Stream the collection's items projected through *path*.

        Uses the fast raw-text scanner (memory bounded by the largest
        file); :meth:`stream_collection` offers the chunked event-based
        projector when even one file must not be held in memory.
        """
        for file_path in self.files(name, partition):
            yield from self._scan_one(file_path, path)

    def _scan_one(self, file_path: str, path: Path) -> Iterator[Item]:
        if self.segment_cache is not None:
            yield from self._scan_one_cached(file_path, path)
            return
        counters = self._counters
        scan = _SCANNERS[self.scan_mode][0]
        if self.on_malformed == "skip_record":
            yield from scan(
                file_path,
                path,
                on_malformed="skip_record",
                recorder=self._recorder(file_path),
                counters=counters,
            )
        elif self.on_malformed == "skip_file":
            # Buffer the file's matches so a mid-file error drops the
            # whole file, not just its tail (memory stays file-bounded,
            # the same bound scan_file already has).
            try:
                items = list(scan(file_path, path, counters=counters))
            except JsonError as error:
                self._record_skipped_file(file_path, error)
                return
            yield from items
        else:
            try:
                yield from scan(file_path, path, counters=counters)
            except JsonError as error:
                raise FileScanError(file_path, error) from error

    def _scan_one_cached(self, file_path: str, path: Path) -> list[Item]:
        """Serve one file from the segment cache, scanning cold on miss.

        The observable behaviour — items, errors, skip events, and the
        ``matched``/``skipped`` counter deltas — is byte-identical with
        the uncached scan: a cold scan stages its counters and merges
        them even when the scan fails mid-file (matching the direct
        pass-through), a hit replays the stored deltas and skip events.
        Only complete scans are stored; a failed or skipped file is
        rescanned next time.
        """
        counters = self._counters
        cache = self.segment_cache
        policy = self.on_malformed
        projection = canonical_projection(path)
        if cache.disabled_reason is not None:
            # Cache-off degradation: scan cold, skip probe and store.
            fingerprint = None
        else:
            try:
                fingerprint = cache.source_fingerprint(file_path)
            except OSError:
                fingerprint = None
        if fingerprint is not None:
            segment, status = cache.load_classified(
                file_path, fingerprint, projection, policy
            )
            if segment is not None:
                if counters is not None:
                    counters.cache_hits += 1
                    counters.absorb(segment.counters)
                for offset, message in segment.skip_events:
                    self._record_skipped_record(file_path, offset, message)
                return segment.items
            if status == "corrupt":
                if counters is not None:
                    counters.cache_corrupt += 1
                self._record_cache_event(
                    "corrupt",
                    file_path,
                    "segment failed its integrity check; rescanned cold",
                )
            elif status == "io-error":
                self._record_cache_event(
                    "io-error", file_path, "segment read failed; rescanned cold"
                )
                if cache.disabled_reason is not None:
                    self._record_cache_event(
                        "disabled", file_path, cache.disabled_reason
                    )
        if counters is not None:
            counters.cache_misses += 1
        attempt = ScanCounters()
        events: list[tuple[int | None, str]] = []
        scan = _SCANNERS[self.scan_mode][0]
        if policy == "skip_record":
            def recorder(offset: int | None, message: str) -> None:
                events.append((offset, message))
                self._record_skipped_record(file_path, offset, message)

            items = list(scan(
                file_path,
                path,
                on_malformed="skip_record",
                recorder=recorder,
                counters=attempt,
            ))
        elif policy == "skip_file":
            try:
                items = list(scan(file_path, path, counters=attempt))
            except JsonError as error:
                if counters is not None:
                    counters.merge(attempt)
                self._record_skipped_file(file_path, error)
                return []
        else:
            try:
                items = list(scan(file_path, path, counters=attempt))
            except JsonError as error:
                if counters is not None:
                    counters.merge(attempt)
                raise FileScanError(file_path, error) from error
        if counters is not None:
            counters.merge(attempt)
        if fingerprint is not None:
            stored = cache.store(
                file_path, fingerprint, projection, policy,
                items, attempt.as_dict(), events,
            )
            if not stored and cache.disabled_reason is not None:
                self._record_cache_event(
                    "disabled", file_path, cache.disabled_reason
                )
        return items

    def _record_cache_event(self, kind: str, source: str, message: str) -> None:
        if self._report is not None:
            self._report.record_cache_event(kind, source, message)

    def _recorder(self, file_path: str):
        def record(offset: int | None, message: str) -> None:
            self._record_skipped_record(file_path, offset, message)

        return record

    def stream_collection(
        self, name: str, path: Path, partition: int | None = None
    ) -> Iterator[Item]:
        """Chunked event-based projection (memory bounded by chunk size).

        The event stream cannot resync past malformed input, so both
        skip policies degrade to truncating the broken file's remainder
        (recorded as a skipped file).
        """
        counters = self._counters
        for file_path in self.files(name, partition):
            if self.on_malformed == "fail":
                try:
                    yield from project_file(file_path, path, counters=counters)
                except JsonError as error:
                    raise FileScanError(file_path, error) from error
            else:
                truncated: list[str] = []

                def record(offset, message, _path=file_path):
                    truncated.append(f"{message} (rest of file dropped)")

                yield from project_file(
                    file_path, path, on_malformed=self.on_malformed,
                    recorder=record, counters=counters,
                )
                for message in truncated:
                    self._record_skipped_file(file_path, ReproError(message))


class InMemorySource:
    """DataSource over in-memory JSON texts (tests, small examples).

    ``collections`` maps names to lists of partitions, each partition a
    list of JSON texts; ``documents`` maps URIs to JSON texts.
    """

    def __init__(
        self,
        collections: dict[str, list[list[str]]] | None = None,
        documents: dict[str, str] | None = None,
        on_malformed: str = "fail",
        scan_mode: str | None = None,
        segment_cache_dir: str | None = None,
        fingerprint_mode: str | None = None,
        stats_sample: int | None = None,
    ):
        self._collections = {
            CollectionCatalog._normalize(name): partitions
            for name, partitions in (collections or {}).items()
        }
        self._documents = dict(documents or {})
        self.on_malformed = validate_on_malformed(on_malformed)
        self.scan_mode = resolve_scan_mode(scan_mode)
        self.segment_cache = resolve_segment_cache(
            segment_cache_dir, fingerprint_mode
        )
        self.stats = SourceStatistics(stats_sample)
        self._local = threading.local()

    def configure_scan(
        self,
        scan_mode: str | None = None,
        segment_cache_dir: str | None = None,
        fingerprint_mode: str | None = None,
    ) -> None:
        """Override scan mode / segment cache (None leaves untouched).

        ``fingerprint_mode`` is accepted for interface symmetry with
        :class:`CollectionCatalog`; in-memory texts are always keyed by
        content hash, so the mode changes nothing here.
        """
        if scan_mode is not None:
            self.scan_mode = validate_scan_mode(scan_mode)
        if segment_cache_dir is not None:
            self.segment_cache = (
                SegmentCache(
                    segment_cache_dir,
                    fingerprint_mode=resolve_fingerprint_mode(fingerprint_mode),
                )
                if segment_cache_dir
                else None
            )
        elif fingerprint_mode is not None and self.segment_cache is not None:
            self.segment_cache.fingerprint_mode = validate_fingerprint_mode(
                fingerprint_mode
            )

    @property
    def _report(self):
        return getattr(self._local, "report", None)

    @property
    def _counters(self):
        return getattr(self._local, "scan_counters", None)

    def attach_degradation(self, report) -> None:
        """Attach (or detach, with None) a degradation report (per thread)."""
        self._local.report = report

    def attach_scan_counters(self, counters) -> None:
        """Attach (or detach, with None) scan counters (per thread)."""
        self._local.scan_counters = counters

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_local"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._local = threading.local()

    def add_document(self, uri: str, text: str) -> None:
        """Register a document text under *uri*."""
        self._documents[uri] = text

    def add_collection(self, name: str, partitions: list[list[str]]) -> None:
        """Register a collection of JSON-text partitions.

        Like :meth:`CollectionCatalog.register`, invalidates the
        collection's sampled statistics.
        """
        self._collections[CollectionCatalog._normalize(name)] = partitions
        self.stats.invalidate(CollectionCatalog._normalize(name))

    def stats_partitions(self, name: str) -> list:
        """Per-partition ``(texts, total_bytes)`` pairs for the sampler."""
        key = CollectionCatalog._normalize(name)
        if key not in self._collections:
            raise ReproError(f"unknown collection {name!r}")
        return [
            (list(texts), sum(len(text) for text in texts))
            for texts in self._collections[key]
        ]

    def collection_stats(self, name: str):
        """Sampled :class:`~repro.stats.sampling.CollectionStats` (or None)."""
        return self.stats.collection_stats(self, name)

    def stats_snapshot(self, names=None):
        """A :class:`~repro.stats.sampling.StatsSnapshot` over *names*."""
        if names is None:
            names = sorted(self._collections)
        return self.stats.snapshot(self, names)

    def refresh_stats(self, name: str | None = None) -> None:
        """Drop sampled statistics so the next consumer re-samples."""
        self.stats.invalidate(name)

    def _texts(
        self, name: str, partition: int | None
    ) -> list[tuple[str, str]]:
        """(label, text) pairs of one partition (or all of them)."""
        key = CollectionCatalog._normalize(name)
        if key not in self._collections:
            raise ReproError(f"unknown collection {name!r}")
        partitions = self._collections[key]
        if partition is None:
            return [
                (f"{key}[partition {p}] text {i}", text)
                for p, texts in enumerate(partitions)
                for i, text in enumerate(texts)
            ]
        return [
            (f"{key}[partition {partition}] text {i}", text)
            for i, text in enumerate(partitions[partition])
        ]

    def partition_count(self, name: str) -> int:
        key = CollectionCatalog._normalize(name)
        if key not in self._collections:
            raise ReproError(f"unknown collection {name!r}")
        return len(self._collections[key])

    def read_document(self, uri: str) -> Item:
        if uri not in self._documents:
            raise ReproError(f"unknown document {uri!r}")
        return parse(self._documents[uri])

    def read_collection(self, name: str, partition: int | None = None) -> list[Item]:
        items: list[Item] = []
        for label, text in self._texts(name, partition):
            if self.on_malformed == "skip_record":
                items.extend(
                    parse_many_resilient(
                        text,
                        on_malformed="skip_record",
                        recorder=self._recorder(label),
                    )
                )
            elif self.on_malformed == "skip_file":
                try:
                    items.extend(parse_many(text))
                except JsonError as error:
                    self._record_skipped_file(label, error)
            else:
                try:
                    items.extend(parse_many(text))
                except JsonError as error:
                    raise FileScanError(label, error) from error
        return items

    def scan_collection(
        self, name: str, path: Path, partition: int | None = None
    ) -> Iterator[Item]:
        counters = self._counters
        scan = _SCANNERS[self.scan_mode][1]
        for label, text in self._texts(name, partition):
            if self.segment_cache is not None:
                yield from self._scan_one_cached(label, text, path)
                continue
            if self.on_malformed == "skip_record":
                yield from scan(
                    text,
                    path,
                    on_malformed="skip_record",
                    recorder=self._recorder(label),
                    counters=counters,
                )
            elif self.on_malformed == "skip_file":
                try:
                    items = list(scan(text, path, counters=counters))
                except JsonError as error:
                    self._record_skipped_file(label, error)
                    continue
                yield from items
            else:
                try:
                    yield from scan(text, path, counters=counters)
                except JsonError as error:
                    raise FileScanError(label, error) from error

    def _scan_one_cached(self, label: str, text: str, path: Path) -> list[Item]:
        """Cached twin of one ``scan_collection`` step (content-hash keyed).

        Same contract as ``CollectionCatalog._scan_one_cached``; the
        fingerprint is a content hash, so edited texts simply produce a
        new key (no staleness window at all).
        """
        counters = self._counters
        cache = self.segment_cache
        policy = self.on_malformed
        projection = canonical_projection(path)
        fingerprint = None
        if cache.disabled_reason is None:
            fingerprint = text_fingerprint(text)
            segment, status = cache.load_classified(
                label, fingerprint, projection, policy
            )
            if segment is not None:
                if counters is not None:
                    counters.cache_hits += 1
                    counters.absorb(segment.counters)
                if self._report is not None:
                    for offset, message in segment.skip_events:
                        self._report.record_skipped_record(
                            label, offset, message
                        )
                return segment.items
            if status == "corrupt":
                if counters is not None:
                    counters.cache_corrupt += 1
                self._record_cache_event(
                    "corrupt",
                    label,
                    "segment failed its integrity check; rescanned cold",
                )
            elif status == "io-error":
                self._record_cache_event(
                    "io-error", label, "segment read failed; rescanned cold"
                )
                if cache.disabled_reason is not None:
                    self._record_cache_event(
                        "disabled", label, cache.disabled_reason
                    )
        if counters is not None:
            counters.cache_misses += 1
        attempt = ScanCounters()
        events: list[tuple[int | None, str]] = []
        scan = _SCANNERS[self.scan_mode][1]
        if policy == "skip_record":
            report = self._report

            def recorder(offset: int | None, message: str) -> None:
                events.append((offset, message))
                if report is not None:
                    report.record_skipped_record(label, offset, message)

            items = list(scan(
                text,
                path,
                on_malformed="skip_record",
                recorder=recorder,
                counters=attempt,
            ))
        elif policy == "skip_file":
            try:
                items = list(scan(text, path, counters=attempt))
            except JsonError as error:
                if counters is not None:
                    counters.merge(attempt)
                self._record_skipped_file(label, error)
                return []
        else:
            try:
                items = list(scan(text, path, counters=attempt))
            except JsonError as error:
                if counters is not None:
                    counters.merge(attempt)
                raise FileScanError(label, error) from error
        if counters is not None:
            counters.merge(attempt)
        if fingerprint is not None:
            stored = cache.store(
                label, fingerprint, projection, policy,
                items, attempt.as_dict(), events,
            )
            if not stored and cache.disabled_reason is not None:
                self._record_cache_event(
                    "disabled", label, cache.disabled_reason
                )
        return items

    def _recorder(self, label: str):
        def record(offset: int | None, message: str) -> None:
            if self._report is not None:
                self._report.record_skipped_record(label, offset, message)

        return record

    def _record_cache_event(self, kind: str, source: str, message: str) -> None:
        if self._report is not None:
            self._report.record_cache_event(kind, source, message)

    def _record_skipped_file(self, label: str, cause: Exception) -> None:
        if self._report is not None:
            self._report.record_skipped_file(label, cause)
