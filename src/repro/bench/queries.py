"""The paper's evaluation queries (Section 5.2), verbatim.

Each query comes in two structural variants: ``wrapped`` for the
Listing 6 file shape (everything under a ``root`` array) and unwrapped
for files of concatenated ``{metadata, results}`` documents (the shape
prepared for the MongoDB/AsterixDB comparisons).  The only difference is
the leading path.
"""

from __future__ import annotations


def _path(wrapped: bool) -> str:
    return '("root")()("results")()' if wrapped else '("results")()'


def q0(collection: str = "/sensors", wrapped: bool = True) -> str:
    """Q0 — selection: all Dec 25 readings from 2003 on (Listing 7)."""
    return (
        f'for $r in collection("{collection}"){_path(wrapped)}\n'
        'let $datetime := dateTime(data($r("date")))\n'
        "where year-from-dateTime($datetime) ge 2003\n"
        "  and month-from-dateTime($datetime) eq 12\n"
        "  and day-from-dateTime($datetime) eq 25\n"
        "return $r"
    )


def q0b(collection: str = "/sensors", wrapped: bool = True) -> str:
    """Q0b — Q0 with the input path extended by ``("date")`` (Listing 8)."""
    return (
        f'for $r in collection("{collection}"){_path(wrapped)}("date")\n'
        "let $datetime := dateTime(data($r))\n"
        "where year-from-dateTime($datetime) ge 2003\n"
        "  and month-from-dateTime($datetime) eq 12\n"
        "  and day-from-dateTime($datetime) eq 25\n"
        "return $r"
    )


def q1(collection: str = "/sensors", wrapped: bool = True) -> str:
    """Q1 — grouped aggregation: stations reporting TMIN per date
    (Listing 9)."""
    return (
        f'for $r in collection("{collection}"){_path(wrapped)}\n'
        'where $r("dataType") eq "TMIN"\n'
        'group by $date := $r("date")\n'
        'return count($r("station"))'
    )


def q1b(collection: str = "/sensors", wrapped: bool = True) -> str:
    """Q1b — Q1 with the pre-optimized return shape (Listing 10)."""
    return (
        f'for $r in collection("{collection}"){_path(wrapped)}\n'
        'where $r("dataType") eq "TMIN"\n'
        'group by $date := $r("date")\n'
        'return count(for $i in $r return $i("station"))'
    )


def q2(collection: str = "/sensors", wrapped: bool = True) -> str:
    """Q2 — self-join: average daily TMAX-TMIN difference (Listing 11)."""
    path = _path(wrapped)
    return (
        "avg(\n"
        f'for $r_min in collection("{collection}"){path}\n'
        f'for $r_max in collection("{collection}"){path}\n'
        'where $r_min("station") eq $r_max("station")\n'
        '  and $r_min("date") eq $r_max("date")\n'
        '  and $r_min("dataType") eq "TMIN"\n'
        '  and $r_max("dataType") eq "TMAX"\n'
        'return $r_max("value") - $r_min("value")\n'
        ") div 10"
    )


ALL_QUERIES = {
    "Q0": q0,
    "Q0b": q0b,
    "Q1": q1,
    "Q1b": q1b,
    "Q2": q2,
}
