"""Timing and reporting utilities for the experiment drivers."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable


def time_call(fn: Callable, *args, **kwargs) -> tuple[float, object]:
    """(elapsed seconds, return value) of one call."""
    started = time.perf_counter()
    value = fn(*args, **kwargs)
    return time.perf_counter() - started, value


def format_seconds(seconds: float) -> str:
    """Human-friendly seconds with sensible precision."""
    if seconds >= 100:
        return f"{seconds:.0f}"
    if seconds >= 1:
        return f"{seconds:.2f}"
    return f"{seconds:.4f}"


def format_bytes(n_bytes: float) -> str:
    """Human-friendly byte counts."""
    value = float(n_bytes)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024 or unit == "GB":
            if unit == "B":
                return f"{int(value)}{unit}"
            return f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.1f}GB"  # pragma: no cover - loop always returns


def format_cell(value) -> str:
    """Render one table cell (floats get seconds-style precision)."""
    if isinstance(value, float):
        return format_seconds(value)
    return str(value)


@dataclass
class ExperimentResult:
    """One experiment's printable outcome.

    ``rows`` hold raw values (floats stay floats so benchmark assertions
    can reason about them); ``to_table`` renders the paper-style table.
    """

    experiment: str
    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: str = ""

    def to_table(self) -> str:
        """Render an aligned text table with title and notes."""
        header = [self.columns] + [
            [format_cell(value) for value in row] for row in self.rows
        ]
        widths = [
            max(len(line[i]) for line in header) for i in range(len(self.columns))
        ]
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append(
            "  ".join(name.ljust(widths[i]) for i, name in enumerate(self.columns))
        )
        lines.append("  ".join("-" * width for width in widths))
        for row in header[1:]:
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def column(self, name: str) -> list:
        """All values of one column, by header name."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def cell(self, row_label, column: str):
        """Value at (first-column == row_label, column)."""
        index = self.columns.index(column)
        for row in self.rows:
            if row[0] == row_label:
                return row[index]
        raise KeyError(row_label)
