"""Scaled dataset builders and per-engine query adapters.

Datasets are built once per process into a temporary directory and
cached by configuration; ``REPRO_BENCH_SCALE`` multiplies every data
size (default 1.0, sized so the full experiment suite runs in minutes on
a laptop — the paper's GB-scale runs shrink by roughly 10^3-10^5, as
documented per experiment in EXPERIMENTS.md).

The adapters express the paper's queries in each baseline engine's
native operations (match/unwind/group pipelines for the document store,
filter/group/join over flattened rows for the SQL engine).
"""

from __future__ import annotations

import atexit
import os
import shutil
import tempfile
from dataclasses import dataclass

from repro.baselines.docstore import DocumentStore
from repro.baselines.sqlengine import InMemorySQLEngine
from repro.data.catalog import CollectionCatalog
from repro.data.generator import SensorDataConfig, write_sensor_collection


def bench_scale() -> float:
    """The global data-size multiplier (``REPRO_BENCH_SCALE``)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


_WORK_DIR: str | None = None
_CACHE: dict = {}


def _work_dir() -> str:
    global _WORK_DIR
    if _WORK_DIR is None:
        _WORK_DIR = tempfile.mkdtemp(prefix="repro-bench-")
        atexit.register(shutil.rmtree, _WORK_DIR, ignore_errors=True)
    return _WORK_DIR


@dataclass
class Workload:
    """A built, partitioned sensor collection."""

    directory: str
    catalog: CollectionCatalog
    collection: str
    wrapped: bool
    config: SensorDataConfig
    partitions: int
    total_bytes: int

    def repartitioned(self, partitions: int) -> CollectionCatalog:
        """A catalog over the same files split into *partitions* groups.

        This is how the single-node speed-up experiment varies the
        partition count without regenerating data: the file pool is
        dealt round-robin into the requested number of partitions.
        """
        files = self.catalog.files(self.collection)
        groups = [files[i::partitions] for i in range(partitions)]
        catalog = CollectionCatalog()
        catalog.register(self.collection, groups)
        return catalog

    def prefix_catalog(self, partitions: int) -> CollectionCatalog:
        """A catalog over only the first *partitions* partitions.

        This is the scale-up helper: per-partition data stays fixed
        while the number of partitions grows with the cluster.
        """
        groups = [
            self.catalog.files(self.collection, p) for p in range(partitions)
        ]
        catalog = CollectionCatalog()
        catalog.register(self.collection, groups)
        return catalog


def sensor_workload(
    partitions: int,
    bytes_per_partition: int,
    measurements_per_array: int = 32,
    wrapped: bool = True,
    file_bytes: int = 32 * 1024,
    seed: int = 7,
) -> Workload:
    """Build (or fetch from cache) a sensor collection.

    ``bytes_per_partition`` is multiplied by ``REPRO_BENCH_SCALE``.
    """
    scaled = int(bytes_per_partition * bench_scale())
    key = (partitions, scaled, measurements_per_array, wrapped, file_bytes, seed)
    if key in _CACHE:
        return _CACHE[key]
    config = SensorDataConfig(
        seed=seed,
        # A narrow date window keeps group cardinality realistic: many
        # measurements share each date, as in the paper's NOAA data.
        start_year=2003,
        year_span=2,
        measurements_per_array=measurements_per_array,
        target_file_bytes=min(file_bytes, scaled),
    )
    label = "w" if wrapped else "u"
    name = f"sensors-{label}-{partitions}x{scaled}-m{measurements_per_array}-s{seed}"
    directory = os.path.join(_work_dir(), name)
    write_sensor_collection(
        directory,
        "sensors",
        partitions=partitions,
        bytes_per_partition=scaled,
        config=config,
        wrapped=wrapped,
    )
    catalog = CollectionCatalog(directory)
    workload = Workload(
        directory=directory,
        catalog=catalog,
        collection="/sensors",
        wrapped=wrapped,
        config=config,
        partitions=partitions,
        total_bytes=catalog.total_bytes("/sensors"),
    )
    _CACHE[key] = workload
    return workload


# ---------------------------------------------------------------------------
# Shared predicates
# ---------------------------------------------------------------------------


def is_dec25_from_2003(date_text: str) -> bool:
    """Q0/Q0b's predicate on the compact date format."""
    return (
        len(date_text) >= 8
        and date_text[4:6] == "12"
        and date_text[6:8] == "25"
        and int(date_text[:4]) >= 2003
    )


# ---------------------------------------------------------------------------
# Document-store (MongoDB-like) adapters
# ---------------------------------------------------------------------------


def mongo_q0b(store: DocumentStore, name: str) -> list[str]:
    """Q0b as a match over unwound measurements, projecting the date."""
    return [
        measurement["date"]
        for measurement in store.unwind(name, "results")
        if is_dec25_from_2003(measurement["date"])
    ]


def mongo_q1(store: DocumentStore, name: str) -> dict:
    """Q1 as unwind + match + group-count."""
    return store.aggregate_count(
        (
            m
            for m in store.unwind(name, "results")
            if m["dataType"] == "TMIN"
        ),
        key=lambda m: m["date"],
    )


def mongo_q2(store: DocumentStore, name: str) -> float | None:
    """Q2 via the paper's workaround: unwind, project, then hash join."""
    left = (
        {"station": m["station"], "date": m["date"], "value": m["value"]}
        for m in store.unwind(name, "results")
        if m["dataType"] == "TMIN"
    )
    right = (
        {"station": m["station"], "date": m["date"], "value": m["value"]}
        for m in store.unwind(name, "results")
        if m["dataType"] == "TMAX"
    )
    total = 0.0
    pairs = 0
    for tmax_row, tmin_row in store.join_projected(
        right, left, key=lambda m: (m["station"], m["date"])
    ):
        total += tmax_row["value"] - tmin_row["value"]
        pairs += 1
    if pairs == 0:
        return None
    return (total / pairs) / 10


def mongo_q2_naive(store: DocumentStore, name: str) -> dict:
    """The naive Q2 strategy: group same-key measurements into one
    document.  Fails with :class:`DocumentTooLargeError` on realistic
    data (Section 5.4)."""
    return store.group_documents(
        (
            m
            for m in store.unwind(name, "results")
            if m["dataType"] in ("TMIN", "TMAX")
        ),
        key=lambda m: (m["station"], m["date"]),
    )


# ---------------------------------------------------------------------------
# SQL-engine (SparkSQL-like) adapters
# ---------------------------------------------------------------------------


def _column(wrapped: bool, field: str) -> str:
    return f"root.results.{field}" if wrapped else f"results.{field}"


def spark_q1(engine: InMemorySQLEngine, table: str, wrapped: bool) -> dict:
    """Q1 as filter + group-count over flattened rows."""
    data_type = _column(wrapped, "dataType")
    date = _column(wrapped, "date")
    return engine.group_count(
        table,
        key=lambda row: row.get(date),
        where=lambda row: row.get(data_type) == "TMIN",
    )


def spark_q0b(engine: InMemorySQLEngine, table: str, wrapped: bool) -> list:
    """Q0b as filter + project over flattened rows."""
    date = _column(wrapped, "date")
    rows = engine.select(
        table,
        where=lambda row: isinstance(row.get(date), str)
        and is_dec25_from_2003(row[date]),
        columns=[date],
    )
    return [row[date] for row in rows]


def spark_q2(engine: InMemorySQLEngine, table: str, wrapped: bool) -> float | None:
    """Q2 as a self-join over flattened rows."""
    data_type = _column(wrapped, "dataType")
    station = _column(wrapped, "station")
    date = _column(wrapped, "date")
    value = _column(wrapped, "value")
    result = engine.join_avg_difference(
        table,
        left_where=lambda row: row.get(data_type) == "TMIN",
        right_where=lambda row: row.get(data_type) == "TMAX",
        key=lambda row: (row.get(station), row.get(date)),
        value_column=value,
    )
    if result is None:
        return None
    return result / 10
