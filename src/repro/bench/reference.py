"""Reference implementations of the paper's queries in plain Python.

These compute Q0-Q2 directly over materialized items, with none of the
query-engine machinery.  They define ground truth: the integration tests
check that every engine (VXQuery under every rule configuration, the
document store, the SQL engine, the ADM engine) agrees with them.
"""

from __future__ import annotations

from repro.jsonlib.items import Item


def iter_measurements(documents: list[Item]):
    """All measurement objects of a parsed sensor dataset.

    Accepts both file shapes: wrapped (``{"root": [...]}`` per file) and
    unwrapped (``{metadata, results}`` documents).
    """
    for document in documents:
        if not isinstance(document, dict):
            continue
        if isinstance(document.get("root"), list):
            members = document["root"]
        else:
            members = [document]
        for member in members:
            if isinstance(member, dict) and isinstance(
                member.get("results"), list
            ):
                yield from member["results"]


def _is_dec25_from_2003(date_text: str) -> bool:
    return (
        date_text[4:6] == "12"
        and date_text[6:8] == "25"
        and int(date_text[:4]) >= 2003
    )


def reference_q0(documents: list[Item]) -> list[Item]:
    """Q0: measurements taken on Dec 25 of 2003 or later."""
    return [
        m
        for m in iter_measurements(documents)
        if _is_dec25_from_2003(m["date"])
    ]


def reference_q0b(documents: list[Item]) -> list[str]:
    """Q0b: the dates of those measurements."""
    return [m["date"] for m in reference_q0(documents)]


def reference_q1(documents: list[Item]) -> dict[str, int]:
    """Q1/Q1b: per-date count of TMIN measurements."""
    counts: dict[str, int] = {}
    for m in iter_measurements(documents):
        if m["dataType"] == "TMIN":
            counts[m["date"]] = counts.get(m["date"], 0) + 1
    return counts


def reference_q2(documents: list[Item]) -> float | None:
    """Q2: avg(TMAX - TMIN) over matching (station, date), div 10."""
    tmin: dict[tuple, list] = {}
    for m in iter_measurements(documents):
        if m["dataType"] == "TMIN":
            tmin.setdefault((m["station"], m["date"]), []).append(m["value"])
    total = 0.0
    pairs = 0
    for m in iter_measurements(documents):
        if m["dataType"] != "TMAX":
            continue
        for tmin_value in tmin.get((m["station"], m["date"]), ()):
            total += m["value"] - tmin_value
            pairs += 1
    if pairs == 0:
        return None
    return (total / pairs) / 10
