"""Reference implementations of the paper's queries in plain Python.

Promoted to :mod:`repro.correctness.oracle`, where they serve as the
independent ground truth for the differential harness as well as the
integration tests; this module re-exports them for existing callers.
"""

from __future__ import annotations

from repro.correctness.oracle import (
    iter_measurements,
    oracle_result,
    reference_q0,
    reference_q0b,
    reference_q1,
    reference_q1_groups,
    reference_q2,
)

__all__ = [
    "iter_measurements",
    "oracle_result",
    "reference_q0",
    "reference_q0b",
    "reference_q1",
    "reference_q1_groups",
    "reference_q2",
]
