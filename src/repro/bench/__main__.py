"""Command-line entry point: ``python -m repro.bench [experiment ...]``.

Runs the requested experiments (all of them by default) and prints each
paper-style table.  ``REPRO_BENCH_SCALE`` multiplies every dataset size.
"""

from __future__ import annotations

import sys
import time

from repro.bench.experiments import EXPERIMENTS, run_experiment


def main(argv: list[str]) -> int:
    """Run the named experiments (all when none given); print tables."""
    names = argv or list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for name in names:
        started = time.perf_counter()
        result = run_experiment(name)
        elapsed = time.perf_counter() - started
        print(result.to_table())
        print(f"(experiment ran in {elapsed:.1f}s)")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
