"""One driver per table and figure of the paper's evaluation (Section 5).

Every driver builds a scaled dataset, runs the same systems the paper
ran, and returns an :class:`~repro.bench.harness.ExperimentResult` whose
rows mirror the paper's table/figure series.  Absolute numbers differ
(the paper used a 9-node cluster and up to 803 GB; we run MB-scale data
and a simulated cluster), but the *shape* — who wins, by what factor,
where crossovers fall — is the reproduction target.  EXPERIMENTS.md
records paper-vs-measured for each driver.
"""

from __future__ import annotations

from repro.errors import MemoryBudgetExceededError
from repro.algebra.rules import RewriteConfig
from repro.baselines.adm import AdmEngine
from repro.baselines.docstore import DocumentStore
from repro.baselines.sqlengine import InMemorySQLEngine
from repro.bench import queries as Q
from repro.bench import workloads as W
from repro.bench.harness import ExperimentResult, time_call
from repro.data.catalog import CollectionCatalog
from repro.hyracks.cluster import ClusterSpec
from repro.processor import JsonProcessor

_QUERY_NAMES = ("Q0", "Q0b", "Q1", "Q1b", "Q2")

# Node counts used by every cluster experiment (the paper's 1-9 nodes).
_NODE_COUNTS = (1, 2, 3, 4, 5, 6, 7, 8, 9)

# Rule configurations, named as the paper's cumulative stages.
_CONFIG_NONE = RewriteConfig.none()
_CONFIG_PATH = RewriteConfig.path_only()
_CONFIG_PIPE = RewriteConfig.path_and_pipelining()
_CONFIG_ALL = RewriteConfig.all()


def _query_text(name: str, wrapped: bool = True) -> str:
    return Q.ALL_QUERIES[name](wrapped=wrapped)


def _run(catalog, query: str, config: RewriteConfig):
    """Execute a query, returning its QueryResult (wall time inside)."""
    return JsonProcessor(catalog, rewrite=config).execute(query)


def _best_run(catalog, query: str, config: RewriteConfig, repeats: int = 3):
    """Best-of-N execution: damps wall-clock noise on sub-second runs."""
    results = [_run(catalog, query, config) for _ in range(repeats)]
    return min(results, key=lambda result: result.wall_seconds)


# ---------------------------------------------------------------------------
# Single-node rule experiments (Figures 13-16)
# ---------------------------------------------------------------------------


def _rule_comparison(
    experiment: str,
    title: str,
    before: RewriteConfig,
    after: RewriteConfig,
    before_label: str,
    after_label: str,
) -> ExperimentResult:
    workload = W.sensor_workload(partitions=1, bytes_per_partition=400_000)
    rows = []
    for name in _QUERY_NAMES:
        query = _query_text(name)
        before_result = _best_run(workload.catalog, query, before)
        after_result = _best_run(workload.catalog, query, after)
        speedup = before_result.wall_seconds / max(
            after_result.wall_seconds, 1e-9
        )
        memory_ratio = before_result.peak_memory_bytes / max(
            after_result.peak_memory_bytes, 1
        )
        rows.append(
            [
                name,
                before_result.wall_seconds,
                after_result.wall_seconds,
                round(speedup, 2),
                before_result.peak_memory_bytes,
                after_result.peak_memory_bytes,
                round(memory_ratio, 1),
            ]
        )
    return ExperimentResult(
        experiment=experiment,
        title=title,
        columns=[
            "Query",
            f"{before_label} (s)",
            f"{after_label} (s)",
            "speedup",
            f"{before_label} mem (B)",
            f"{after_label} mem (B)",
            "mem ratio",
        ],
        rows=rows,
        notes="single node, one partition; paper used a 400MB collection. "
        "The paper's runtime gap is driven by the buffering the memory "
        "columns expose (see EXPERIMENTS.md on magnitudes)",
    )


def fig13() -> ExperimentResult:
    """Figure 13: execution time before/after the path expression rules."""
    return _rule_comparison(
        "fig13",
        "execution time before/after Path Expression Rules",
        _CONFIG_NONE,
        _CONFIG_PATH,
        "no rules",
        "path rules",
    )


def fig14() -> ExperimentResult:
    """Figure 14: before/after the pipelining rules (log scale in paper)."""
    return _rule_comparison(
        "fig14",
        "execution time before/after Pipelining Rules",
        _CONFIG_PATH,
        _CONFIG_PIPE,
        "path rules",
        "+pipelining",
    )


def fig15() -> ExperimentResult:
    """Figure 15: before/after the group-by rules (Q1/Q1b improve)."""
    return _rule_comparison(
        "fig15",
        "execution time before/after Group-by Rules",
        _CONFIG_PIPE,
        _CONFIG_ALL,
        "path+pipelining",
        "+group-by",
    )


def fig16() -> ExperimentResult:
    """Figure 16: Q1 vs collection size, before/after all rules."""
    rows = []
    for multiplier in (1, 2, 3, 4):
        workload = W.sensor_workload(
            partitions=1, bytes_per_partition=150_000 * multiplier
        )
        query = _query_text("Q1")
        before = _best_run(workload.catalog, query, _CONFIG_NONE)
        after = _best_run(workload.catalog, query, _CONFIG_ALL)
        rows.append(
            [
                f"{workload.total_bytes // 1024}KB",
                before.wall_seconds,
                after.wall_seconds,
                round(before.wall_seconds / max(after.wall_seconds, 1e-9), 2),
                before.peak_memory_bytes,
                after.peak_memory_bytes,
            ]
        )
    return ExperimentResult(
        experiment="fig16",
        title="Q1 execution time vs data size, before/after all rules",
        columns=[
            "collection",
            "before (s)",
            "after (s)",
            "speedup",
            "before mem (B)",
            "after mem (B)",
        ],
        rows=rows,
        notes="paper sizes were 100MB-400MB; both series scale ~linearly "
        "with data, the naive one also in memory",
    )


# ---------------------------------------------------------------------------
# Figure 17: single-node speed-up over partitions (hyperthread plateau)
# ---------------------------------------------------------------------------


def fig17() -> ExperimentResult:
    """Figure 17: single-node speed-up with 1/2/4/8 partitions."""
    workload = W.sensor_workload(partitions=8, bytes_per_partition=60_000)
    partition_counts = (1, 2, 4, 8)
    columns = ["Query"] + [
        f"{p} partition{'s' if p > 1 else ''}" + (" (HT)" if p == 8 else "")
        for p in partition_counts
    ]
    rows = []
    for name in _QUERY_NAMES:
        row = [name]
        for partitions in partition_counts:
            catalog = workload.repartitioned(partitions)
            cluster = ClusterSpec().single_node(partitions)
            # Best-of-2 damps scheduler jitter in the tiny partitions.
            row.append(
                min(
                    _run(catalog, _query_text(name), _CONFIG_ALL)
                    .simulated_seconds(cluster)
                    for _ in range(2)
                )
            )
        rows.append(row)
    return ExperimentResult(
        experiment="fig17",
        title="single-node speed-up (4 cores, 8 hyperthreads)",
        columns=columns,
        rows=rows,
        notes="simulated makespan from measured per-partition work; "
        "8 HT partitions serialize on 4 cores",
    )


# ---------------------------------------------------------------------------
# Figure 18 + Table 1: document-size sweep vs MongoDB / AsterixDB
# ---------------------------------------------------------------------------

_MEASUREMENTS_SWEEP = (30, 22, 15, 7, 1)
_sweep_cache: dict | None = None


def _document_size_sweep() -> dict:
    """Shared sweep behind fig18a, fig18b, and table1."""
    global _sweep_cache
    if _sweep_cache is not None:
        return _sweep_cache
    sweep: dict = {"measurements": list(_MEASUREMENTS_SWEEP), "rows": []}
    for measurements in _MEASUREMENTS_SWEEP:
        workload = W.sensor_workload(
            partitions=1,
            bytes_per_partition=250_000,
            measurements_per_array=measurements,
            wrapped=False,
        )
        query = _query_text("Q0b", wrapped=False)
        raw_bytes = workload.total_bytes

        vx_result = _best_run(workload.catalog, query, _CONFIG_ALL)

        store = DocumentStore()
        mongo_load = store.load_files(
            "sensors", workload.catalog.files("/sensors")
        )
        mongo_query_seconds = min(
            time_call(W.mongo_q0b, store, "sensors")[0] for _ in range(2)
        )

        adm_external = AdmEngine(workload.catalog, mode="external")
        adm_ext_result = min(
            (adm_external.execute(query) for _ in range(2)),
            key=lambda r: r.wall_seconds,
        )

        adm_loaded = AdmEngine(
            workload.catalog,
            mode="load",
            storage_dir=f"{workload.directory}/adm-m{measurements}",
        )
        adm_load = adm_loaded.load("/sensors")
        adm_load_result = min(
            (adm_loaded.execute(query) for _ in range(2)),
            key=lambda r: r.wall_seconds,
        )

        sweep["rows"].append(
            {
                "measurements": measurements,
                "raw_bytes": raw_bytes,
                "vx_seconds": vx_result.wall_seconds,
                "mongo_seconds": mongo_query_seconds,
                "mongo_load_seconds": mongo_load.seconds,
                "mongo_bytes": store.stored_bytes("sensors"),
                "adm_ext_seconds": adm_ext_result.wall_seconds,
                "adm_load_seconds": adm_load.seconds,
                "adm_loaded_seconds": adm_load_result.wall_seconds,
                "adm_bytes": adm_loaded.stored_bytes("/sensors"),
            }
        )
    _sweep_cache = sweep
    return sweep


def fig18a() -> ExperimentResult:
    """Figure 18a: Q0b time vs measurements/array, four systems."""
    rows = [
        [
            entry["measurements"],
            entry["vx_seconds"],
            entry["mongo_seconds"],
            entry["adm_ext_seconds"],
            entry["adm_loaded_seconds"],
        ]
        for entry in _document_size_sweep()["rows"]
    ]
    return ExperimentResult(
        experiment="fig18a",
        title="Q0b execution time vs measurements per array",
        columns=[
            "meas/array",
            "VXQuery (s)",
            "MongoDB (s)",
            "AsterixDB (s)",
            "AsterixDB(load) (s)",
        ],
        rows=rows,
        notes="paper dataset was 88GB; query times exclude loading",
    )


def fig18b() -> ExperimentResult:
    """Figure 18b: space consumption vs measurements/array."""
    rows = [
        [
            entry["measurements"],
            entry["raw_bytes"],
            entry["mongo_bytes"],
            entry["adm_bytes"],
        ]
        for entry in _document_size_sweep()["rows"]
    ]
    return ExperimentResult(
        experiment="fig18b",
        title="space consumption vs measurements per array",
        columns=[
            "meas/array",
            "VXQuery/AsterixDB raw (B)",
            "MongoDB stored (B)",
            "AsterixDB(load) stored (B)",
        ],
        rows=rows,
        notes="MongoDB compresses per document: bigger documents, "
        "smaller footprint",
    )


def table1() -> ExperimentResult:
    """Table 1: loading time, MongoDB vs AsterixDB(load)."""
    rows = [
        [
            entry["measurements"],
            entry["mongo_load_seconds"],
            entry["adm_load_seconds"],
        ]
        for entry in _document_size_sweep()["rows"]
    ]
    return ExperimentResult(
        experiment="table1",
        title="loading time for different measurements/array",
        columns=["meas/array", "MongoDB load (s)", "AsterixDB(load) load (s)"],
        rows=rows,
        notes="VXQuery and AsterixDB(external) have no loading phase",
    )


# ---------------------------------------------------------------------------
# Figure 19 + Tables 2-3: SparkSQL comparison
# ---------------------------------------------------------------------------

_SPARK_SIZES = (400_000, 800_000, 1_000_000)
_spark_cache: dict | None = None


def _spark_sweep() -> dict:
    global _spark_cache
    if _spark_cache is not None:
        return _spark_cache
    sweep: dict = {"rows": []}
    for size in _SPARK_SIZES:
        workload = W.sensor_workload(partitions=1, bytes_per_partition=size)
        vx = JsonProcessor(workload.catalog, rewrite=_CONFIG_ALL)
        vx_result = vx.execute(_query_text("Q1"))

        engine = InMemorySQLEngine()
        load = engine.load_files(
            "sensors", workload.catalog.files("/sensors")
        )
        query_seconds, _ = time_call(W.spark_q1, engine, "sensors", True)

        sweep["rows"].append(
            {
                "size_bytes": workload.total_bytes,
                "vx_seconds": vx_result.wall_seconds,
                "vx_memory": vx_result.peak_memory_bytes,
                "spark_query_seconds": query_seconds,
                "spark_load_seconds": load.seconds,
                "spark_memory": load.memory_bytes,
            }
        )
    _spark_cache = sweep
    return sweep


def fig19() -> ExperimentResult:
    """Figure 19: SparkSQL vs VXQuery on Q1 over growing data sizes."""
    rows = [
        [
            f"{entry['size_bytes'] // 1024}KB",
            entry["vx_seconds"],
            entry["spark_query_seconds"],
            entry["spark_query_seconds"] + entry["spark_load_seconds"],
        ]
        for entry in _spark_sweep()["rows"]
    ]
    return ExperimentResult(
        experiment="fig19",
        title="SparkSQL vs VXQuery, Q1 execution time",
        columns=[
            "data size",
            "VXQuery total (s)",
            "SparkSQL query (s)",
            "SparkSQL query+load (s)",
        ],
        rows=rows,
        notes="the paper's bars show VXQuery total vs Spark query-only; "
        "counting the load, VXQuery wins (paper sizes 400MB-1GB)",
    )


def table2() -> ExperimentResult:
    """Table 2: SparkSQL loading time per data size."""
    rows = [
        [f"{entry['size_bytes'] // 1024}KB", entry["spark_load_seconds"]]
        for entry in _spark_sweep()["rows"]
    ]
    return ExperimentResult(
        experiment="table2",
        title="SparkSQL loading time",
        columns=["data size", "loading (s)"],
        rows=rows,
    )


def table3() -> ExperimentResult:
    """Table 3: memory — Spark holds everything, VXQuery streams."""
    rows = [
        [
            f"{entry['size_bytes'] // 1024}KB",
            entry["spark_memory"],
            entry["vx_memory"],
        ]
        for entry in _spark_sweep()["rows"]
    ]
    return ExperimentResult(
        experiment="table3",
        title="data size to system memory",
        columns=["data size", "Spark memory (B)", "VXQuery memory (B)"],
        rows=rows,
        notes="Spark memory grows with input; VXQuery stays flat "
        "(only query-relevant state is held)",
    )


def spark_memory_failure(budget_bytes: int = 200_000) -> bool:
    """The paper's 'Spark cannot load >2GB on a 16GB node' behaviour.

    Returns True when loading the largest sweep size under a scaled
    budget raises the memory-budget error.
    """
    workload = W.sensor_workload(
        partitions=1, bytes_per_partition=_SPARK_SIZES[-1]
    )
    engine = InMemorySQLEngine(memory_budget_bytes=budget_bytes)
    try:
        engine.load_files("sensors", workload.catalog.files("/sensors"))
    except MemoryBudgetExceededError:
        return True
    return False


# ---------------------------------------------------------------------------
# Figures 20-21: cluster speed-up and scale-up
# ---------------------------------------------------------------------------


def _cluster_table(
    experiment: str,
    title: str,
    query_names,
    catalog_for_nodes,
    engine_factory=None,
    wrapped: bool = True,
    notes: str = "",
) -> ExperimentResult:
    """Generic node-count sweep; rows = queries, columns = node counts."""
    if engine_factory is None:
        engine_factory = lambda catalog: JsonProcessor(catalog, rewrite=_CONFIG_ALL)
    columns = ["Query"] + [f"{n} node{'s' if n > 1 else ''}" for n in _NODE_COUNTS]
    rows = []
    for name in query_names:
        row = [name]
        # Warm caches (regexes, files) so the first node count is not
        # biased by one-time costs.
        engine_factory(catalog_for_nodes(_NODE_COUNTS[0])).execute(
            _query_text(name, wrapped=wrapped)
        )
        for nodes in _NODE_COUNTS:
            catalog = catalog_for_nodes(nodes)
            engine = engine_factory(catalog)
            result = engine.execute(_query_text(name, wrapped=wrapped))
            cluster = ClusterSpec().with_nodes(nodes)
            row.append(result.simulated_seconds(cluster))
        rows.append(row)
    return ExperimentResult(
        experiment=experiment,
        title=title,
        columns=columns,
        rows=rows,
        notes=notes,
    )


def fig20() -> ExperimentResult:
    """Figure 20: cluster speed-up, fixed total data, 1-9 nodes."""
    workload = W.sensor_workload(
        partitions=36, bytes_per_partition=40_000, file_bytes=8_192
    )
    return _cluster_table(
        "fig20",
        "cluster speed-up, all queries (fixed total data)",
        _QUERY_NAMES,
        lambda nodes: workload.repartitioned(4 * nodes),
        notes="paper dataset was 803GB, evenly partitioned",
    )


def fig21() -> ExperimentResult:
    """Figure 21: cluster scale-up, fixed per-node data, 1-9 nodes."""
    workload = W.sensor_workload(
        partitions=36, bytes_per_partition=40_000, file_bytes=8_192
    )
    return _cluster_table(
        "fig21",
        "cluster scale-up, all queries (fixed data per node)",
        _QUERY_NAMES,
        lambda nodes: workload.prefix_catalog(4 * nodes),
        notes="paper added 88GB per node",
    )


# ---------------------------------------------------------------------------
# Figures 22-23: VXQuery vs AsterixDB on the cluster
# ---------------------------------------------------------------------------


def _versus_adm(experiment: str, title: str, catalog_builder) -> ExperimentResult:
    workload = W.sensor_workload(
        partitions=36,
        bytes_per_partition=15_000,
        measurements_per_array=1,
        wrapped=False,
        file_bytes=4_096,
    )
    columns = ["Query", "System"] + [
        f"{n} node{'s' if n > 1 else ''}" for n in _NODE_COUNTS
    ]
    rows = []
    for name in ("Q0b", "Q2"):
        for system, factory in (
            ("VXQuery", lambda c: JsonProcessor(c, rewrite=_CONFIG_ALL)),
            ("AsterixDB", lambda c: AdmEngine(c, mode="external")),
        ):
            row = [name, system]
            # Warm-up run (see _cluster_table).
            factory(catalog_builder(workload, _NODE_COUNTS[0])).execute(
                _query_text(name, wrapped=False)
            )
            for nodes in _NODE_COUNTS:
                catalog = catalog_builder(workload, nodes)
                result = factory(catalog).execute(
                    _query_text(name, wrapped=False)
                )
                cluster = ClusterSpec().with_nodes(nodes)
                row.append(result.simulated_seconds(cluster))
            rows.append(row)
    return ExperimentResult(
        experiment=experiment,
        title=title,
        columns=columns,
        rows=rows,
        notes="one measurement per document (AsterixDB's best structure); "
        "AsterixDB = same runtime without pipelining rules",
    )


def fig22() -> ExperimentResult:
    """Figure 22: VXQuery vs AsterixDB cluster speed-up (Q0b, Q2)."""
    return _versus_adm(
        "fig22",
        "VXQuery vs AsterixDB: cluster speed-up",
        lambda workload, nodes: workload.repartitioned(4 * nodes),
    )


def fig23() -> ExperimentResult:
    """Figure 23: VXQuery vs AsterixDB cluster scale-up (Q0b, Q2)."""
    return _versus_adm(
        "fig23",
        "VXQuery vs AsterixDB: cluster scale-up",
        lambda workload, nodes: workload.prefix_catalog(4 * nodes),
    )


# ---------------------------------------------------------------------------
# Figures 24-25 + Table 4: VXQuery vs MongoDB on the cluster
# ---------------------------------------------------------------------------


def _mongo_node_stores(catalog: CollectionCatalog) -> list[DocumentStore]:
    """One loaded DocumentStore per partition group (a 'node')."""
    stores = []
    for partition in range(catalog.partition_count("/sensors")):
        store = DocumentStore()
        store.load_files("sensors", catalog.files("/sensors", partition))
        stores.append(store)
    return stores


def _mongo_cluster_q0b(stores: list[DocumentStore]) -> tuple[list[float], float]:
    node_seconds = []
    for store in stores:
        seconds, _ = time_call(W.mongo_q0b, store, "sensors")
        node_seconds.append(seconds)
    return node_seconds, 0.0


def _mongo_cluster_q2(stores: list[DocumentStore]) -> tuple[list[float], float]:
    """Per-node unwind/project, then a central join (the exchange)."""
    node_seconds = []
    projected: list[list] = []
    for store in stores:
        def _project(current_store=store):
            rows = [
                {
                    "station": m["station"],
                    "date": m["date"],
                    "value": m["value"],
                    "dataType": m["dataType"],
                }
                for m in current_store.unwind("sensors", "results")
                if m["dataType"] in ("TMIN", "TMAX")
            ]
            return rows

        seconds, rows = time_call(_project)
        node_seconds.append(seconds)
        projected.append(rows)

    def _join():
        table: dict = {}
        for rows in projected:
            for row in rows:
                if row["dataType"] == "TMIN":
                    table.setdefault((row["station"], row["date"]), []).append(
                        row["value"]
                    )
        total, pairs = 0.0, 0
        for rows in projected:
            for row in rows:
                if row["dataType"] != "TMAX":
                    continue
                for tmin in table.get((row["station"], row["date"]), ()):
                    total += row["value"] - tmin
                    pairs += 1
        return None if pairs == 0 else (total / pairs) / 10

    join_seconds, _ = time_call(_join)
    return node_seconds, join_seconds


def _versus_mongo(experiment: str, title: str, catalog_builder) -> ExperimentResult:
    workload = W.sensor_workload(
        partitions=36, bytes_per_partition=15_000, wrapped=False,
        file_bytes=4_096,
    )
    columns = ["Query", "System"] + [
        f"{n} node{'s' if n > 1 else ''}" for n in _NODE_COUNTS
    ]
    rows = []
    for name, mongo_query in (("Q0b", _mongo_cluster_q0b), ("Q2", _mongo_cluster_q2)):
        vx_row = [name, "VXQuery"]
        mongo_row = [name, "MongoDB"]
        # Warm-up run (see _cluster_table).
        JsonProcessor(
            catalog_builder(workload, _NODE_COUNTS[0]), rewrite=_CONFIG_ALL
        ).execute(_query_text(name, wrapped=False))
        for nodes in _NODE_COUNTS:
            catalog = catalog_builder(workload, nodes)
            cluster = ClusterSpec().with_nodes(nodes)

            result = JsonProcessor(catalog, rewrite=_CONFIG_ALL).execute(
                _query_text(name, wrapped=False)
            )
            vx_row.append(result.simulated_seconds(cluster))

            # MongoDB: one shard per node (partition groups merge 4:1).
            node_catalog = CollectionCatalog()
            all_files = catalog.files("/sensors")
            node_catalog.register(
                "/sensors", [all_files[i::nodes] for i in range(nodes)]
            )
            stores = _mongo_node_stores(node_catalog)
            node_seconds, global_seconds = mongo_query(stores)
            # Smooth symmetric per-node work like QueryResult does.
            mean = sum(node_seconds) / len(node_seconds)
            mongo_row.append(
                cluster.makespan(
                    [mean] * len(node_seconds), global_seconds=global_seconds
                )
            )
        rows.append(vx_row)
        rows.append(mongo_row)
    return ExperimentResult(
        experiment=experiment,
        title=title,
        columns=columns,
        rows=rows,
        notes="MongoDB query times exclude its loading phase (Table 4); "
        "its Q2 needs the unwind/project workaround",
    )


def fig24() -> ExperimentResult:
    """Figure 24: VXQuery vs MongoDB cluster speed-up (Q0b, Q2)."""
    return _versus_mongo(
        "fig24",
        "VXQuery vs MongoDB: cluster speed-up",
        lambda workload, nodes: workload.repartitioned(4 * nodes),
    )


def fig25() -> ExperimentResult:
    """Figure 25: VXQuery vs MongoDB cluster scale-up (Q0b, Q2)."""
    return _versus_mongo(
        "fig25",
        "VXQuery vs MongoDB: cluster scale-up",
        lambda workload, nodes: workload.prefix_catalog(4 * nodes),
    )


def table4() -> ExperimentResult:
    """Table 4: MongoDB loading time for the two dataset scales."""
    rows = []
    for label, size in (("88GB (scaled)", 500_000), ("803GB (scaled)", 4_500_000)):
        workload = W.sensor_workload(partitions=4, bytes_per_partition=size // 4)
        store = DocumentStore()
        report = store.load_files("sensors", workload.catalog.files("/sensors"))
        rows.append([label, f"{workload.total_bytes // 1024}KB", report.seconds])
    return ExperimentResult(
        experiment="table4",
        title="MongoDB loading time",
        columns=["paper size", "scaled size", "loading (s)"],
        rows=rows,
        notes="paper: 9000s for 88GB, 81000s for 803GB per node",
    )


# ---------------------------------------------------------------------------
# Ablations (design choices DESIGN.md calls out)
# ---------------------------------------------------------------------------


def ablation_projection_depth() -> ExperimentResult:
    """How DATASCAN's projection argument size affects Q0 vs Q0b.

    Section 5.3: "the smaller the argument given to DATASCAN, the
    better for exploiting pipelining".
    """
    workload = W.sensor_workload(partitions=1, bytes_per_partition=400_000)
    rows = []
    for name in ("Q0", "Q0b"):
        result = _run(workload.catalog, _query_text(name), _CONFIG_ALL)
        rows.append(
            [
                name,
                result.wall_seconds,
                result.stats.scanned_item_bytes,
                result.stats.items_scanned,
            ]
        )
    return ExperimentResult(
        experiment="ablation_projection_depth",
        title="projection path depth: Q0 (objects) vs Q0b (dates only)",
        columns=["Query", "time (s)", "scanned item bytes", "items"],
        rows=rows,
        notes="Q0b's DATASCAN forwards only date strings — the smaller "
        "tuples the paper credits for its best-case performance",
    )


def ablation_two_step_aggregation() -> ExperimentResult:
    """Two-step aggregation on/off (the Section 4.3 parallel rule)."""
    workload = W.sensor_workload(partitions=8, bytes_per_partition=60_000)
    rows = []
    for name in ("Q1", "Q2"):
        query = _query_text(name)
        on = JsonProcessor(workload.catalog, rewrite=_CONFIG_ALL).execute(query)
        off_config = RewriteConfig(True, True, True, two_step_aggregation=False)
        off = JsonProcessor(workload.catalog, rewrite=off_config).execute(query)
        rows.append(
            [
                name,
                on.simulated_seconds(ClusterSpec(nodes=2)),
                off.simulated_seconds(ClusterSpec(nodes=2)),
                on.stats.exchange_bytes,
                off.stats.exchange_bytes,
            ]
        )
    return ExperimentResult(
        experiment="ablation_two_step_aggregation",
        title="two-step aggregation on/off (2 simulated nodes)",
        columns=[
            "Query",
            "two-step (s)",
            "raw-exchange (s)",
            "two-step exchange (B)",
            "raw exchange (B)",
        ],
        rows=rows,
        notes="without the rule, raw tuples ship to the coordinator",
    )


def ablation_group_cardinality() -> ExperimentResult:
    """Group-by rule benefit vs group cardinality (Section 4.3: 'the
    larger the groups, the better the observed improvement')."""
    rows = []
    for stations, label in ((1000, "small groups"), (10, "large groups")):
        workload = W.sensor_workload(
            partitions=1, bytes_per_partition=250_000, seed=stations
        )
        # Group by station: fewer stations -> larger groups.
        query = (
            'for $r in collection("/sensors")("root")()("results")()\n'
            'group by $s := $r("station")\n'
            'return count($r("date"))'
        )
        before = _run(workload.catalog, query, _CONFIG_PIPE)
        after = _run(workload.catalog, query, _CONFIG_ALL)
        rows.append(
            [
                label,
                before.wall_seconds,
                after.wall_seconds,
                round(before.wall_seconds / max(after.wall_seconds, 1e-9), 2),
            ]
        )
    return ExperimentResult(
        experiment="ablation_group_cardinality",
        title="group-by rule benefit vs group cardinality",
        columns=["groups", "before (s)", "after (s)", "speedup"],
        rows=rows,
    )


def ablation_frame_size() -> ExperimentResult:
    """Frame size vs exchange frame counts (Hyracks' restriction)."""
    from repro.hyracks.frames import frame_stream

    workload = W.sensor_workload(partitions=1, bytes_per_partition=150_000)
    catalog = workload.catalog
    items = catalog.read_collection("/sensors")
    from repro.bench.reference import iter_measurements

    tuples = [{"r": [m]} for m in iter_measurements(items)]
    rows = []
    for frame_bytes in (4 * 1024, 32 * 1024, 128 * 1024):
        frames = list(frame_stream(tuples, frame_bytes=frame_bytes))
        rows.append(
            [
                f"{frame_bytes // 1024}KB",
                len(frames),
                round(sum(len(f) for f in frames) / max(len(frames), 1), 1),
            ]
        )
    return ExperimentResult(
        experiment="ablation_frame_size",
        title="frame size vs frames emitted for the Q0 tuple stream",
        columns=["frame size", "frames", "tuples/frame"],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

EXPERIMENTS = {
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
    "fig18a": fig18a,
    "fig18b": fig18b,
    "table1": table1,
    "fig19": fig19,
    "table2": table2,
    "table3": table3,
    "fig20": fig20,
    "fig21": fig21,
    "fig22": fig22,
    "fig23": fig23,
    "fig24": fig24,
    "fig25": fig25,
    "table4": table4,
    "ablation_projection_depth": ablation_projection_depth,
    "ablation_two_step_aggregation": ablation_two_step_aggregation,
    "ablation_group_cardinality": ablation_group_cardinality,
    "ablation_frame_size": ablation_frame_size,
}


def run_experiment(name: str) -> ExperimentResult:
    """Run one experiment by id (see :data:`EXPERIMENTS`)."""
    return EXPERIMENTS[name]()
