"""Benchmark harness: regenerates every table and figure of Section 5.

- :mod:`repro.bench.queries` — the paper's queries Q0, Q0b, Q1, Q1b, Q2,
- :mod:`repro.bench.workloads` — scaled dataset builders and per-engine
  query adapters,
- :mod:`repro.bench.harness` — timing and table-printing utilities,
- :mod:`repro.bench.experiments` — one driver per paper table/figure.

Run everything (or a subset) from the command line::

    python -m repro.bench                # all experiments
    python -m repro.bench fig14 table1   # specific ones
    REPRO_BENCH_SCALE=4 python -m repro.bench fig20   # more data

The same drivers back the ``benchmarks/`` pytest-benchmark suite, which
asserts the paper's qualitative shape (who wins, where the crossovers
are) on small scales.
"""

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.harness import ExperimentResult

__all__ = ["EXPERIMENTS", "ExperimentResult", "run_experiment"]
