"""Optional result cache keyed by plan fingerprint × source fingerprints.

A service answering the same query over unchanged inputs should not
re-execute it.  The cache key combines:

- the **plan key** — (query text, toggle-config label, the source's
  malformed-input policy): everything that determines the compiled
  plan and its observable scan behaviour; and
- the **source fingerprints** — one fingerprint per file (or in-memory
  text) of every collection the plan scans, computed under the
  service's fingerprint mode (:mod:`repro.cache.config`).

File-change invalidation is implicit: editing, truncating, or
replacing any input file changes its fingerprint, which changes the
key, so the stale entry is simply never matched again and ages out of
the LRU.  Under ``content`` mode (the service default) even a
same-size in-place rewrite that fools ``stat`` misses the cache.

Only clean (non-degraded) results are cached: a partial result embeds
skip events whose replay belongs to the resilience layer, not to a
cache.  Hits return the stored items list shallow-copied — callers
that mutate the returned *item objects* corrupt the cache; the service
contract (like the segment cache's) is that results are read-only.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.cache.config import validate_fingerprint_mode
from repro.cache.segments import (
    content_file_fingerprint,
    file_fingerprint,
    text_fingerprint,
)


def source_fingerprints(source, collections, mode: str):
    """Fingerprint every input of *collections* under *mode*.

    Returns a tuple of ``(label, fingerprint)`` pairs in deterministic
    (collection, partition, file) order, or ``None`` when the source
    cannot be fingerprinted (unknown source type, or a file vanished
    mid-lookup) — the caller then skips the cache for this request.
    """
    validate_fingerprint_mode(mode)
    pairs = []
    files = getattr(source, "files", None)
    if files is not None:
        fingerprint_one = (
            content_file_fingerprint if mode == "content" else file_fingerprint
        )
        try:
            for name in collections:
                for path in files(name):
                    pairs.append((path, fingerprint_one(path)))
        except OSError:
            return None
        return tuple(pairs)
    texts = getattr(source, "_texts", None)
    if texts is not None:
        # In-memory sources are always content-keyed.
        for name in collections:
            for label, text in texts(name, None):
                pairs.append((label, text_fingerprint(text)))
        return tuple(pairs)
    return None


@dataclass
class CachedResult:
    """One cached execution: items plus the telemetry worth replaying."""

    items: list
    stats: object
    degradation: object
    strategy: str


class ResultCache:
    """Thread-safe LRU over ``(plan key, source fingerprints) -> result``."""

    def __init__(self, capacity: int = 64):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key) -> CachedResult | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key, result: CachedResult) -> None:
        with self._lock:
            if not self.capacity:
                return
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
