"""A long-lived, multi-tenant query service over the partitioned engine.

Everything below this module is one-shot: a
:class:`~repro.JsonProcessor` compiles and runs a single query and its
executor carries per-query mutable state.  :class:`QueryService` is the
long-lived counterpart — the shape of a VXQuery/Hyracks cluster
controller fielding many concurrent queries:

- **long-lived catalogs**: one shared data source; per-query scan
  state (degradation reports, scan counters) is thread-local on the
  catalog, so concurrent query threads never see each other's events;
- **a shared backend pool**: one
  :class:`~repro.hyracks.backends.ExecutionBackend` per concurrency
  slot, owned by that slot's worker thread.  Pools (threads or forked
  processes) persist across queries, so fork/spawn cost is paid once —
  but no backend instance is ever shared by two in-flight queries,
  because backends carry per-run recovery/pool state;
- **admission control**: a bounded queue with per-tenant
  :class:`TenantQuota` limits (max concurrent queries, queue depth,
  memory budget, deadline ceiling).  Over-quota submissions are
  rejected synchronously with a structured
  :class:`~repro.errors.AdmissionError` — they never enter the queue,
  so they cannot crash or starve admitted queries;
- **scheduling**: admitted requests run FIFO, skipping over tenants
  that are at their concurrency limit (no head-of-line blocking across
  tenants).  Each query runs under its own
  :class:`~repro.hyracks.limits.ExecutionLimits` — the tenant deadline
  ceiling plus a per-request filesystem-flag
  :class:`~repro.hyracks.limits.CancellationToken`, so cancellation
  reaches even process-pool workers forked before the cancel;
- **plan cache**: an LRU keyed by (query text, toggle config) — see
  :mod:`repro.service.plan_cache`;
- **result cache** (optional): keyed by plan fingerprint × source
  fingerprints with file-change invalidation — see
  :mod:`repro.service.result_cache`.  The service defaults both the
  result cache and any segment cache it configures to ``content``
  fingerprints: a long-lived server must not serve stale bytes through
  the ``stat`` fingerprint's same-size rewrite window.

Every completed query returns a :class:`ServiceResponse` carrying the
result items plus the per-request telemetry the observability layers
already produce: the
:class:`~repro.observability.profile.QueryProfile` (when profiling)
and the :class:`~repro.resilience.report.DegradationReport`.

**Self-healing.**  The service supervises itself one layer above the
per-query resilience machinery:

- **slot supervision**: each slot's worker thread runs under a
  supervisor; if the thread dies (a crash in the service loop, or an
  injected death via :meth:`QueryService.inject_slot_failure`), the
  supervisor replaces both the thread and the slot's backend under a
  bounded restart budget (``max_slot_restarts``), recording a
  structured :class:`~repro.service.events.SlotRestartEvent` in
  ``stats()``.  A slot whose budget is spent is *abandoned*; when every
  slot is abandoned, queued requests fail cleanly and new submissions
  are rejected with ``AdmissionError("no-slots", ...)``.  A slot whose
  backend keeps failing (``backend_failure_threshold`` consecutive
  backend-level errors) gets a fresh backend in place;
- **query-level retry**: queries are read-only, so a request that
  fails with a classified-retryable error — a dead slot
  (:class:`~repro.errors.SlotFailureError`), exhausted worker recovery
  (:class:`~repro.errors.RecoveryExhaustedError`), or transient
  spill/cache I/O (anything in the ``__cause__`` chain with
  ``retryable = True``, never a timeout or cancellation) — is re-queued
  at the front, preferring a different slot, up to
  ``max_query_retries`` times, with whatever remains of its *original*
  deadline and the same cancellation token.  Retry provenance rides on
  the response (``retries`` / ``retry_causes``) and in ``stats()``;
- **overload protection**: a submission whose predicted queue wait
  (mean recent query duration × backlog ÷ live slots, measured on the
  injectable clock from the ``CLOCKS`` registry) already exceeds its
  deadline is shed at admission (``"predicted-timeout"``), and an
  optional per-tenant circuit breaker (``circuit_failure_threshold``)
  opens after N consecutive failures, admitting one probe per
  ``circuit_cooldown_seconds`` until a success closes it
  (``"circuit-open"`` while open).
"""

from __future__ import annotations

import itertools
import os
import shutil
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.algebra.operators import DataScan
from repro.algebra.rules import RewriteConfig
from repro.cache.config import resolve_fingerprint_mode
from repro.errors import (
    AdmissionError,
    BackendError,
    ProcessorClosedError,
    QueryCancelledError,
    QueryTimeoutError,
    RecoveryExhaustedError,
    SlotFailureError,
)
from repro.hyracks.backends import BACKENDS, resolve_backend
from repro.hyracks.executor import PartitionedExecutor
from repro.hyracks.limits import CancellationToken
from repro.observability.clock import CLOCKS, make_clock
from repro.observability.profile import resolve_profile_config
from repro.resilience.policies import ResilienceConfig
from repro.service.events import QueryRetryEvent, SlotRestartEvent
from repro.service.plan_cache import PlanCache
from repro.service.result_cache import (
    CachedResult,
    ResultCache,
    source_fingerprints,
)


def _is_query_retryable(error: BaseException) -> bool:
    """Whether a failed request may be re-executed on a fresh slot.

    Walks the ``__cause__`` chain.  Timeouts and cancellations are
    query-global verdicts (never retried); anything carrying
    ``retryable = True`` (spill/cache I/O, transient injected faults,
    slot death) or an exhausted-recovery escalation is retryable,
    because a read-only query re-derives everything from the source.
    """
    seen: set[int] = set()
    current: BaseException | None = error
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        if isinstance(
            current, (QueryCancelledError, QueryTimeoutError, AdmissionError)
        ):
            return False
        if isinstance(current, RecoveryExhaustedError):
            return True
        if getattr(current, "retryable", False):
            return True
        current = current.__cause__
    return False


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits for one tenant.

    ``max_concurrent`` queries may execute at once and ``max_queued``
    more may wait; a submission beyond ``max_concurrent + max_queued``
    in flight is rejected.  ``memory_budget_bytes`` is both the cap on
    what a request may ask for and the default budget when it asks for
    nothing; ``deadline_ceiling_seconds`` likewise caps and defaults
    the per-query deadline.  ``None`` means unlimited.
    """

    max_concurrent: int = 2
    max_queued: int = 8
    memory_budget_bytes: int | None = None
    deadline_ceiling_seconds: float | None = None

    def __post_init__(self):
        if self.max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1, got {self.max_concurrent!r}"
            )
        if self.max_queued < 0:
            raise ValueError(
                f"max_queued must be >= 0, got {self.max_queued!r}"
            )
        if (
            self.deadline_ceiling_seconds is not None
            and self.deadline_ceiling_seconds <= 0
        ):
            raise ValueError("deadline_ceiling_seconds must be positive")


@dataclass
class ServiceResponse:
    """One completed query: items plus per-request telemetry."""

    request_id: int
    tenant: str
    query: str
    items: list
    backend: str
    strategy: str
    wall_seconds: float
    queue_seconds: float
    plan_cache_hit: bool
    result_cache_hit: bool
    #: :class:`~repro.observability.profile.QueryProfile` (None unless profiled)
    profile: object = None
    #: :class:`~repro.resilience.report.DegradationReport` of this run
    degradation: object = None
    #: :class:`~repro.hyracks.executor.ExecutionStats` of this run
    stats: object = None
    deadline_slack_seconds: float | None = None
    is_partial: bool = False
    warnings: list = field(default_factory=list)
    #: how many times this request was re-executed after a retryable
    #: failure (0 = first execution succeeded), and why.
    retries: int = 0
    retry_causes: list = field(default_factory=list)


class _Request:
    """Internal per-submission state shared by ticket and scheduler."""

    __slots__ = (
        "id",
        "tenant",
        "query",
        "profile",
        "memory_budget",
        "deadline",
        "token",
        "event",
        "response",
        "error",
        "state",
        "submitted_at",
        "retries",
        "retry_causes",
        "first_started_at",
        "avoid_slot",
    )

    def __init__(self, request_id, tenant, query, profile, memory, deadline, token):
        self.id = request_id
        self.tenant = tenant
        self.query = query
        self.profile = profile
        self.memory_budget = memory
        self.deadline = deadline
        self.token = token
        self.event = threading.Event()
        self.response = None
        self.error = None
        self.state = "queued"
        self.submitted_at = time.perf_counter()
        self.retries = 0
        self.retry_causes: list[str] = []
        # perf_counter() of the *first* execution start: retries run
        # against whatever remains of the original deadline, not a
        # fresh one.
        self.first_started_at = None
        # slot index of the last failure; a retry prefers any other
        # live slot (honored only while another live slot exists).
        self.avoid_slot = None


class _Slot:
    """One concurrency slot: a backend owned by a supervised worker thread."""

    __slots__ = (
        "index",
        "backend",
        "thread",
        "restarts",
        "backend_failures",
        "abandoned",
        "current",
    )

    def __init__(self, index: int, backend):
        self.index = index
        self.backend = backend
        self.thread = None
        self.restarts = 0
        self.backend_failures = 0
        self.abandoned = False
        self.current = None  # the _Request in flight (worker thread only)


class _Breaker:
    """Per-tenant circuit-breaker state (all transitions service-side)."""

    __slots__ = ("state", "failures", "opened_at", "probing")

    def __init__(self):
        self.state = "closed"  # "closed" | "open" | "half-open"
        self.failures = 0
        self.opened_at = 0.0
        self.probing = False


class QueryTicket:
    """Handle on one admitted submission: await the result or cancel."""

    def __init__(self, service: "QueryService", request: _Request):
        self._service = service
        self._request = request

    @property
    def request_id(self) -> int:
        return self._request.id

    @property
    def tenant(self) -> str:
        return self._request.tenant

    def done(self) -> bool:
        return self._request.event.is_set()

    def result(self, timeout: float | None = None) -> ServiceResponse:
        """Block until the query finishes; return or raise its outcome."""
        if not self._request.event.wait(timeout):
            raise TimeoutError(
                f"query {self._request.id} still running after {timeout}s"
            )
        if self._request.error is not None:
            raise self._request.error
        return self._request.response

    def cancel(self, reason: str = "cancelled by client") -> bool:
        """Cancel this query; True if the cancel could still take effect.

        A queued query is withdrawn immediately (its :meth:`result`
        raises :class:`~repro.errors.QueryCancelledError` without ever
        executing); a running query is signalled through its
        cancellation token and unwinds at the next frame boundary.
        """
        return self._service._cancel(self._request, reason)


class QueryService:
    """Long-lived concurrent query service (see module docstring).

    Parameters
    ----------
    source:
        The shared data source (catalog) all queries run against.
    rewrite:
        Rewrite-toggle config applied to every query (default: all
        rules).  Part of the plan-cache key.
    backend:
        Backend *name* (``"sequential"`` | ``"thread"`` | ``"process"``)
        for partition work; ``None`` consults ``REPRO_BACKEND``.  The
        service builds one backend instance per concurrency slot, so
        instances are not accepted here.
    max_concurrent_queries:
        Service-wide concurrency: worker threads × backend slots.
    max_workers:
        Per-query worker cap inside each backend (default: CPU count).
    max_queue_depth:
        Bound on queued-but-not-running requests across all tenants
        (default: ``4 × max_concurrent_queries``).
    default_quota / quotas:
        The :class:`TenantQuota` applied to unknown tenants, and
        per-tenant overrides by name.
    plan_cache_size / result_cache_size:
        LRU capacities; ``result_cache_size=0`` (default) disables
        result caching.
    cache_fingerprint:
        Fingerprint mode for the result cache and any segment cache
        this service configures; defaults to ``"content"`` (a
        long-lived server must detect same-size in-place rewrites).
    segment_cache_dir:
        When given, (re)configures the source's segment cache under
        ``cache_fingerprint``.
    memory_budget_bytes / spill / spill_dir / resilience:
        Per-query execution defaults, as on
        :class:`~repro.JsonProcessor`.
    max_query_retries:
        Bounded re-executions of a request after a classified-retryable
        failure (default 1; 0 disables query-level retry).
    max_slot_restarts:
        Per-slot supervisor restart budget (default 3); a slot that
        dies beyond it is abandoned for the life of the service.
    backend_failure_threshold:
        Consecutive backend-level failures on one slot before its
        backend is replaced in place (default 3).
    clock:
        Name from the injectable ``CLOCKS`` registry (default
        ``"wall"``) used for load-shedding duration estimates and
        circuit-breaker cooldowns — register a scripted clock to make
        both deterministic in tests.
    circuit_failure_threshold / circuit_cooldown_seconds:
        Per-tenant circuit breaker: after *threshold* consecutive
        failures the tenant's submissions are rejected with
        ``AdmissionError("circuit-open", ...)`` until the cooldown
        admits a half-open probe (default ``None`` = breaker off).
    """

    def __init__(
        self,
        source,
        rewrite: RewriteConfig | None = None,
        backend: str | None = None,
        max_concurrent_queries: int = 2,
        max_workers: int | None = None,
        max_queue_depth: int | None = None,
        default_quota: TenantQuota | None = None,
        quotas: dict[str, TenantQuota] | None = None,
        plan_cache_size: int = 128,
        result_cache_size: int = 0,
        cache_fingerprint: str = "content",
        segment_cache_dir: str | None = None,
        memory_budget_bytes: int | None = None,
        spill: bool = True,
        spill_dir: str | None = None,
        resilience: ResilienceConfig | None = None,
        functions=None,
        cost: bool | None = None,
        max_query_retries: int = 1,
        max_slot_restarts: int = 3,
        backend_failure_threshold: int = 3,
        clock: str = "wall",
        circuit_failure_threshold: int | None = None,
        circuit_cooldown_seconds: float = 30.0,
    ):
        if backend is not None and backend not in BACKENDS:
            raise ValueError(
                f"backend must be a name from {sorted(BACKENDS)} or None; "
                f"the service owns its backend instances"
            )
        if max_concurrent_queries < 1:
            raise ValueError(
                f"max_concurrent_queries must be >= 1, "
                f"got {max_concurrent_queries!r}"
            )
        if max_query_retries < 0:
            raise ValueError(
                f"max_query_retries must be >= 0, got {max_query_retries!r}"
            )
        if max_slot_restarts < 0:
            raise ValueError(
                f"max_slot_restarts must be >= 0, got {max_slot_restarts!r}"
            )
        if backend_failure_threshold < 1:
            raise ValueError(
                f"backend_failure_threshold must be >= 1, "
                f"got {backend_failure_threshold!r}"
            )
        if clock not in CLOCKS:
            raise ValueError(
                f"unknown service clock {clock!r}; "
                f"expected one of {sorted(CLOCKS)}"
            )
        if (
            circuit_failure_threshold is not None
            and circuit_failure_threshold < 1
        ):
            raise ValueError(
                f"circuit_failure_threshold must be >= 1 or None, "
                f"got {circuit_failure_threshold!r}"
            )
        if circuit_cooldown_seconds < 0:
            raise ValueError(
                f"circuit_cooldown_seconds must be >= 0, "
                f"got {circuit_cooldown_seconds!r}"
            )
        self._source = source
        self._rewrite = rewrite if rewrite is not None else RewriteConfig.all()
        from repro.stats.cost import resolve_cost_enabled

        self._cost = (
            resolve_cost_enabled(cost) if self._rewrite.cost else False
        )
        self._functions = functions
        self._resilience = resilience
        self._memory_budget = memory_budget_bytes
        self._spill = spill
        self._spill_dir = spill_dir
        self._max_workers = max_workers
        self._fingerprint_mode = resolve_fingerprint_mode(cache_fingerprint)
        if segment_cache_dir is not None:
            configure = getattr(source, "configure_scan", None)
            if configure is not None:
                configure(
                    segment_cache_dir=segment_cache_dir,
                    fingerprint_mode=self._fingerprint_mode,
                )
        self.default_quota = (
            default_quota if default_quota is not None else TenantQuota()
        )
        self.quotas: dict[str, TenantQuota] = dict(quotas or {})
        self.plan_cache = PlanCache(plan_cache_size)
        self.result_cache = (
            ResultCache(result_cache_size) if result_cache_size else None
        )
        self._max_queue_depth = (
            max_queue_depth
            if max_queue_depth is not None
            else 4 * max_concurrent_queries
        )
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._queue: list[_Request] = []
        self._running: dict[str, int] = {}
        self._queued: dict[str, int] = {}
        self._running_requests: list[_Request] = []
        self._closed = False
        self._request_seq = itertools.count(1)
        self._counters = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "rejected": 0,
            "retried": 0,
        }
        self._rejected_by_reason: dict[str, int] = {}
        # -- self-healing state --------------------------------------------
        self._backend_name = backend
        self._max_query_retries = max_query_retries
        self._max_slot_restarts = max_slot_restarts
        self._backend_failure_threshold = backend_failure_threshold
        self._clock_name = clock
        self._clock = make_clock(clock)
        self._circuit_threshold = circuit_failure_threshold
        self._circuit_cooldown = circuit_cooldown_seconds
        self._breakers: dict[str, _Breaker] = {}
        self._recent_durations: deque = deque(maxlen=32)
        self._slot_events: list[SlotRestartEvent] = []
        self._retry_events: list[QueryRetryEvent] = []
        # slot index → pending injected-death count (see
        # inject_slot_failure); a dict of counts so tests can queue
        # several deterministic deaths on one slot.
        self._kill_slots: dict[int, int] = {}
        # Per-request cancel flags live here so a cancel issued after a
        # process-pool worker forked is still observed via the filesystem.
        self._flag_dir = tempfile.mkdtemp(prefix="repro-service-")
        self._slots = [
            _Slot(index, resolve_backend(backend, max_workers=max_workers))
            for index in range(max_concurrent_queries)
        ]
        for slot in self._slots:
            self._spawn_worker(slot)

    def _spawn_worker(self, slot: _Slot) -> None:
        slot.thread = threading.Thread(
            target=self._worker_main,
            args=(slot,),
            name=f"repro-service-{slot.index}r{slot.restarts}",
            daemon=True,
        )
        slot.thread.start()

    # -- admission -------------------------------------------------------------

    def _quota(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def _reject(self, reason, tenant, message, limit=None, requested=None):
        self._counters["rejected"] += 1
        self._rejected_by_reason[reason] = (
            self._rejected_by_reason.get(reason, 0) + 1
        )
        raise AdmissionError(reason, tenant, message, limit, requested)

    def submit(
        self,
        query: str,
        tenant: str = "default",
        profile=None,
        memory_budget_bytes: int | None = None,
        deadline_seconds: float | None = None,
    ) -> QueryTicket:
        """Admit *query* for *tenant*; returns a ticket, or raises
        :class:`~repro.errors.AdmissionError` synchronously.

        Admission is deterministic in the submission order: given the
        same sequence of submits/finishes, the same submission is
        rejected with the same reason, because every check runs under
        the service lock against exact queued/running counts.
        """
        quota = self._quota(tenant)
        with self._lock:
            if self._closed:
                self._reject("closed", tenant, "service is closed")
            if all(slot.abandoned for slot in self._slots):
                self._reject(
                    "no-slots",
                    tenant,
                    "every slot worker exhausted its restart budget; "
                    "no live slot can execute this query",
                )
            self._check_breaker(tenant)
            if (
                memory_budget_bytes is not None
                and quota.memory_budget_bytes is not None
                and memory_budget_bytes > quota.memory_budget_bytes
            ):
                self._reject(
                    "memory-quota",
                    tenant,
                    f"requested {memory_budget_bytes} bytes exceeds the "
                    f"tenant budget of {quota.memory_budget_bytes} bytes",
                    limit=quota.memory_budget_bytes,
                    requested=memory_budget_bytes,
                )
            if (
                deadline_seconds is not None
                and quota.deadline_ceiling_seconds is not None
                and deadline_seconds > quota.deadline_ceiling_seconds
            ):
                self._reject(
                    "deadline-quota",
                    tenant,
                    f"requested {deadline_seconds:g}s deadline exceeds the "
                    f"tenant ceiling of {quota.deadline_ceiling_seconds:g}s",
                    limit=quota.deadline_ceiling_seconds,
                    requested=deadline_seconds,
                )
            in_flight = self._running.get(tenant, 0) + self._queued.get(
                tenant, 0
            )
            allowed = quota.max_concurrent + quota.max_queued
            if in_flight >= allowed:
                self._reject(
                    "tenant-quota",
                    tenant,
                    f"{in_flight} queries already in flight "
                    f"(limit {quota.max_concurrent} running "
                    f"+ {quota.max_queued} queued)",
                    limit=allowed,
                    requested=in_flight + 1,
                )
            if len(self._queue) >= self._max_queue_depth:
                self._reject(
                    "service-queue",
                    tenant,
                    f"service admission queue is full "
                    f"({self._max_queue_depth} waiting)",
                    limit=self._max_queue_depth,
                    requested=len(self._queue) + 1,
                )
            effective_deadline = (
                deadline_seconds
                if deadline_seconds is not None
                else quota.deadline_ceiling_seconds
            )
            if effective_deadline is not None and self._recent_durations:
                predicted = self._predicted_wait_locked()
                if predicted > effective_deadline:
                    self._reject(
                        "predicted-timeout",
                        tenant,
                        f"predicted queue wait {predicted:.3f}s already "
                        f"exceeds the {effective_deadline:g}s deadline",
                        limit=effective_deadline,
                        requested=predicted,
                    )
            request_id = next(self._request_seq)
            token = CancellationToken(
                flag_path=os.path.join(self._flag_dir, f"cancel-{request_id}")
            )
            request = _Request(
                request_id,
                tenant,
                query,
                profile,
                memory_budget_bytes
                if memory_budget_bytes is not None
                else quota.memory_budget_bytes
                if quota.memory_budget_bytes is not None
                else self._memory_budget,
                deadline_seconds
                if deadline_seconds is not None
                else quota.deadline_ceiling_seconds,
                token,
            )
            # Every admission check has passed and the request is about
            # to enqueue: only now claim the half-open probe, so a
            # rejection above can never leak it and lock the tenant out.
            self._grant_probe_locked(tenant)
            self._queue.append(request)
            self._queued[tenant] = self._queued.get(tenant, 0) + 1
            self._counters["submitted"] += 1
            self._work_ready.notify()
        return QueryTicket(self, request)

    def execute(self, query: str, tenant: str = "default", **kwargs):
        """Submit and block for the response (one-shot convenience)."""
        return self.submit(query, tenant=tenant, **kwargs).result()

    # -- overload protection ---------------------------------------------------

    def _live_slot_count_locked(self) -> int:
        return sum(1 for slot in self._slots if not slot.abandoned)

    def _predicted_wait_locked(self) -> float:
        """Predicted queue wait for a new submission (service lock held).

        Mean of the last few completed-query durations (measured on the
        injectable service clock) × current backlog ÷ live slots — a
        deterministic estimate under a scripted clock, because every
        input is service-side state.
        """
        if not self._recent_durations:
            return 0.0
        mean = sum(self._recent_durations) / len(self._recent_durations)
        backlog = len(self._queue) + sum(self._running.values())
        return mean * backlog / max(1, self._live_slot_count_locked())

    def _check_breaker(self, tenant: str) -> None:
        """Reject (under the lock) when the tenant's breaker is open.

        Pure check: it transitions open → half-open once the cooldown
        elapses but never claims the half-open probe itself — the probe
        is granted by :meth:`_grant_probe_locked` as the *last*
        admission step, so a submission that passes here but is
        rejected by a later check (quota, queue depth, predicted
        timeout) cannot strand the breaker with a phantom probe that
        locks the tenant out forever.
        """
        if self._circuit_threshold is None:
            return
        breaker = self._breakers.get(tenant)
        if breaker is None or breaker.state == "closed":
            return
        if breaker.state == "open":
            if self._clock() - breaker.opened_at >= self._circuit_cooldown:
                breaker.state = "half-open"
                breaker.probing = False
        if breaker.state == "half-open" and not breaker.probing:
            return
        self._reject(
            "circuit-open",
            tenant,
            f"circuit breaker open after {breaker.failures} consecutive "
            f"failures (cooldown {self._circuit_cooldown:g}s"
            + (", probe in flight)" if breaker.probing else ")"),
            limit=self._circuit_threshold,
            requested=breaker.failures,
        )

    def _grant_probe_locked(self, tenant: str) -> None:
        """Claim the half-open probe for a submission that will enqueue."""
        if self._circuit_threshold is None:
            return
        breaker = self._breakers.get(tenant)
        if breaker is not None and breaker.state == "half-open":
            breaker.probing = True  # admit exactly one probe

    def _breaker_result_locked(self, tenant: str, error) -> None:
        """Feed one final request outcome into the tenant's breaker."""
        if self._circuit_threshold is None:
            return
        breaker = self._breakers.setdefault(tenant, _Breaker())
        if error is None or isinstance(error, QueryCancelledError):
            # A cancel is a client verdict, not a service failure.
            if error is None:
                breaker.state = "closed"
                breaker.failures = 0
            breaker.probing = False
            return
        breaker.failures += 1
        breaker.probing = False
        if (
            breaker.state in ("open", "half-open")
            or breaker.failures >= self._circuit_threshold
        ):
            breaker.state = "open"
            breaker.opened_at = self._clock()

    # -- scheduling ------------------------------------------------------------

    def _next_request(self, slot: _Slot) -> _Request | None:
        """Claim the next runnable request (None = service shut down).

        FIFO over the admission queue, skipping requests whose tenant
        is at its concurrency limit — a backlogged tenant never blocks
        another tenant's work — and requests that just failed on *this*
        slot (honored only while another live slot could take them).
        """
        with self._work_ready:
            while True:
                for index, request in enumerate(self._queue):
                    if (
                        request.avoid_slot == slot.index
                        and self._live_slot_count_locked() > 1
                    ):
                        continue
                    quota = self._quota(request.tenant)
                    if (
                        self._running.get(request.tenant, 0)
                        < quota.max_concurrent
                    ):
                        del self._queue[index]
                        self._queued[request.tenant] -= 1
                        self._running[request.tenant] = (
                            self._running.get(request.tenant, 0) + 1
                        )
                        self._running_requests.append(request)
                        request.state = "running"
                        return request
                if self._closed:
                    return None
                self._work_ready.wait()

    def _worker_main(self, slot: _Slot) -> None:
        """Thread target: the worker loop under slot supervision.

        Anything that escapes the loop — a crash in the scheduling
        machinery or an injected slot death — is a *slot* failure, not
        a query failure: the supervisor replaces the slot (under its
        restart budget) and routes the in-flight request, if any, into
        query-level retry on the replacement.
        """
        try:
            self._worker_loop(slot)
        except BaseException as error:  # noqa: BLE001 - supervised
            self._supervise_slot_death(slot, error)

    def _worker_loop(self, slot: _Slot) -> None:
        while True:
            request = self._next_request(slot)
            if request is None:
                return
            slot.current = request
            with self._lock:
                pending = self._kill_slots.get(slot.index, 0)
                if pending == 1:
                    del self._kill_slots[slot.index]
                elif pending:
                    self._kill_slots[slot.index] = pending - 1
            if pending:
                # Escapes to _worker_main with slot.current still set,
                # exactly like a genuine crash between claim and finish.
                raise SlotFailureError(slot.index, "injected slot death")
            started_clock = self._clock()
            try:
                response = self._execute_request(request, slot.backend)
            except BaseException as error:  # noqa: BLE001 - routed to ticket
                slot.current = None
                self._complete_request(
                    slot,
                    request,
                    error=error,
                    duration=self._clock() - started_clock,
                )
            else:
                slot.current = None
                self._complete_request(
                    slot,
                    request,
                    response=response,
                    duration=self._clock() - started_clock,
                )

    def _supervise_slot_death(self, slot: _Slot, error: BaseException) -> None:
        """Replace a dead slot worker (bounded) and rescue its request."""
        request = slot.current
        slot.current = None
        detail = f"{type(error).__name__}: {error}"
        old_backend = slot.backend
        with self._lock:
            respawn = not self._closed and slot.restarts < self._max_slot_restarts
            if respawn:
                slot.restarts += 1
                kind = "worker-death"
            else:
                slot.abandoned = True
                kind = "abandoned"
            self._slot_events.append(
                SlotRestartEvent(
                    slot=slot.index,
                    kind=kind,
                    restarts=slot.restarts,
                    message=detail,
                    request_id=request.id if request is not None else None,
                )
            )
        if respawn:
            # Fresh backend first (the old one may be wedged), then a
            # fresh thread; both outside the lock — backend construction
            # can fork processes.  The respawn itself is supervised: if
            # the new backend or thread cannot be built (e.g. fork
            # failure under the same resource exhaustion that killed the
            # slot), the slot is marked abandoned instead of lingering
            # as a phantom "live" slot that will never run anything.
            try:
                old_backend.close()
            except Exception:
                pass
            try:
                new_backend = resolve_backend(
                    self._backend_name, max_workers=self._max_workers
                )
                with self._lock:
                    slot.backend = new_backend
                    slot.backend_failures = 0
                self._spawn_worker(slot)
            except Exception as spawn_error:
                respawn = False
                with self._lock:
                    slot.abandoned = True
                    self._slot_events.append(
                        SlotRestartEvent(
                            slot=slot.index,
                            kind="abandoned",
                            restarts=slot.restarts,
                            message=(
                                f"respawn failed: "
                                f"{type(spawn_error).__name__}: "
                                f"{spawn_error}"
                            ),
                            request_id=(
                                request.id if request is not None else None
                            ),
                        )
                    )
                    self._work_ready.notify_all()
        if request is not None:
            failure = SlotFailureError(slot.index, detail)
            if isinstance(error, Exception):
                failure.__cause__ = error
            # note_backend=False: the replacement worker already owns
            # slot.backend (or the slot is abandoned) — see
            # _complete_request.
            self._complete_request(
                slot, request, error=failure, note_backend=False
            )
        if not respawn:
            self._fail_orphans()

    def _fail_orphans(self) -> None:
        """Fail every queued request once no live slot remains to run it."""
        with self._lock:
            if self._closed or any(not s.abandoned for s in self._slots):
                return
            orphans = list(self._queue)
            self._queue.clear()
            for request in orphans:
                self._queued[request.tenant] -= 1
                request.state = "orphaned"
        for request in orphans:
            self._finish(
                request,
                error=SlotFailureError(
                    -1, "every slot worker exhausted its restart budget"
                ),
            )

    def inject_slot_failure(self, slot: int = 0) -> None:
        """Make *slot*'s worker die before executing its next request.

        A test/chaos hook: the death takes the real supervision path —
        the slot's thread raises out of its loop with the claimed
        request in flight, the supervisor replaces thread and backend
        under the restart budget, and the request is retried on the
        replacement.  Repeated calls queue additional deaths, one per
        claimed request.  Raises :class:`ValueError` for an unknown
        slot.
        """
        if not 0 <= slot < len(self._slots):
            raise ValueError(
                f"slot must be in [0, {len(self._slots)}), got {slot!r}"
            )
        with self._lock:
            self._kill_slots[slot] = self._kill_slots.get(slot, 0) + 1
            self._work_ready.notify_all()

    # -- retry -----------------------------------------------------------------

    def _complete_request(
        self, slot: _Slot, request: _Request, response=None, error=None,
        duration=None, note_backend=True,
    ) -> None:
        """Route one execution outcome: retry, backend health, or finish.

        ``note_backend=False`` skips the backend-health bookkeeping —
        used by the slot supervisor, which runs on the *dying* worker
        thread after the replacement worker already owns (and may be
        executing on) ``slot.backend``; touching the backend there
        would race the new worker, and the supervisor already swapped
        in a fresh backend anyway.
        """
        if note_backend:
            self._note_backend_result(slot, error)
        if error is not None and self._maybe_retry(slot, request, error):
            return
        self._finish(request, response=response, error=error, duration=duration)

    def _note_backend_result(self, slot: _Slot, error) -> None:
        """Track consecutive backend failures; replace a broken backend.

        Only ever called on the slot's *owning* worker thread with no
        query in flight, so no other thread executes on this backend
        concurrently; the counter and the swap still happen under the
        service lock so supervision and ``stats()`` readers observe a
        consistent slot.
        """
        is_backend_error = False
        current = error
        seen: set[int] = set()
        while current is not None and id(current) not in seen:
            seen.add(id(current))
            if isinstance(current, (BackendError, SlotFailureError)):
                is_backend_error = True
                break
            current = current.__cause__
        with self._lock:
            if not is_backend_error:
                slot.backend_failures = 0
                return
            slot.backend_failures += 1
            if slot.backend_failures < self._backend_failure_threshold:
                return
            old_backend = slot.backend
        # Close and rebuild outside the lock — backend construction can
        # fork processes; the owning thread is the only user meanwhile.
        try:
            old_backend.close()
        except Exception:
            pass
        new_backend = resolve_backend(
            self._backend_name, max_workers=self._max_workers
        )
        with self._lock:
            slot.backend = new_backend
            slot.backend_failures = 0
            self._slot_events.append(
                SlotRestartEvent(
                    slot=slot.index,
                    kind="backend-replaced",
                    restarts=slot.restarts,
                    message=(
                        f"replaced backend after "
                        f"{self._backend_failure_threshold} consecutive "
                        f"backend failures"
                    ),
                )
            )

    def _maybe_retry(self, slot: _Slot, request: _Request, error) -> bool:
        """Re-queue a retryable failure (front of queue, other slot first)."""
        if self._max_query_retries <= 0:
            return False
        if request.retries >= self._max_query_retries:
            return False
        if not _is_query_retryable(error):
            return False
        if request.token.cancelled:
            return False
        if (
            request.deadline is not None
            and request.first_started_at is not None
            and time.perf_counter() - request.first_started_at
            >= request.deadline
        ):
            return False
        with self._lock:
            if self._closed:
                return False
            if all(s.abandoned for s in self._slots):
                return False
            request.retries += 1
            cause = f"{type(error).__name__}: {error}"
            request.retry_causes.append(cause)
            request.avoid_slot = slot.index
            if request.state == "running":
                self._running[request.tenant] -= 1
                self._running_requests.remove(request)
            request.state = "queued"
            self._queue.insert(0, request)
            self._queued[request.tenant] = (
                self._queued.get(request.tenant, 0) + 1
            )
            self._counters["retried"] += 1
            self._retry_events.append(
                QueryRetryEvent(
                    request_id=request.id,
                    tenant=request.tenant,
                    attempt=request.retries,
                    slot=slot.index,
                    error=type(error).__name__,
                    message=str(error),
                )
            )
            self._work_ready.notify_all()
        return True

    def _finish(
        self, request: _Request, response=None, error=None, duration=None
    ) -> None:
        request.response = response
        request.error = error
        with self._lock:
            if request.state == "running":
                self._running[request.tenant] -= 1
                self._running_requests.remove(request)
            request.state = "done"
            if duration is not None:
                self._recent_durations.append(duration)
            self._breaker_result_locked(request.tenant, error)
            if error is None:
                self._counters["completed"] += 1
            elif isinstance(error, QueryCancelledError):
                self._counters["cancelled"] += 1
            else:
                self._counters["failed"] += 1
            # Set the ticket's event inside the critical section: anyone
            # who observes the post-finish counters (a drain() returning,
            # a stats() reader) must also observe the ticket as done.
            request.event.set()
            self._work_ready.notify_all()
            self._idle.notify_all()
        try:
            os.unlink(request.token.flag_path)
        except OSError:
            pass

    def _cancel(self, request: _Request, reason: str) -> bool:
        with self._lock:
            if request.state == "queued":
                self._queue.remove(request)
                self._queued[request.tenant] -= 1
                request.state = "done"
                request.error = QueryCancelledError(reason)
                self._counters["cancelled"] += 1
                self._work_ready.notify_all()
                self._idle.notify_all()
                request.event.set()
                return True
            if request.state == "running":
                request.token.cancel(reason)
                return True
            return False

    # -- statistics ------------------------------------------------------------

    def _stats_snapshot(self):
        if not self._cost:
            return None
        snapshot = getattr(self._source, "stats_snapshot", None)
        if snapshot is None:
            return None
        return snapshot()

    def collection_stats(self, name: str):
        """The source's sampled stats for one collection (or None)."""
        stats = getattr(self._source, "collection_stats", None)
        return stats(name) if stats is not None else None

    def refresh_stats(self, name: str | None = None) -> None:
        """Drop sampled statistics so the next query re-samples.

        The snapshot fingerprint is part of the plan-cache key, so
        queries compiled after a refresh never reuse plans costed
        against the stale statistics.
        """
        refresh = getattr(self._source, "refresh_stats", None)
        if refresh is not None:
            refresh(name)

    # -- execution -------------------------------------------------------------

    def _execute_request(self, request: _Request, backend) -> ServiceResponse:
        started = time.perf_counter()
        if request.first_started_at is None:
            request.first_started_at = started
        # A retry executes with whatever remains of the *original*
        # deadline — a retried request never gets more wall time than
        # the client asked for.
        remaining_deadline = request.deadline
        if request.deadline is not None:
            elapsed = started - request.first_started_at
            remaining_deadline = max(request.deadline - elapsed, 0.001)
        queue_seconds = started - request.submitted_at
        compiled, plan_hit = self.plan_cache.get_or_compile(
            request.query, self._rewrite, stats=self._stats_snapshot()
        )
        request.token.check()  # cancelled between dequeue and start
        result_key = None
        # Profiled requests bypass the result cache: a cached response
        # cannot carry a fresh execution profile.
        if (
            self.result_cache is not None
            and resolve_profile_config(request.profile) is None
        ):
            collections = sorted(
                {
                    scan.collection
                    for scan in compiled.plan.operators_of(DataScan)
                }
            )
            fingerprints = source_fingerprints(
                self._source, collections, self._fingerprint_mode
            )
            if fingerprints is not None:
                result_key = (
                    request.query,
                    self._rewrite,
                    getattr(self._source, "on_malformed", None),
                    fingerprints,
                )
                cached = self.result_cache.get(result_key)
                if cached is not None:
                    return ServiceResponse(
                        request_id=request.id,
                        tenant=request.tenant,
                        query=request.query,
                        items=list(cached.items),
                        backend=backend.name,
                        strategy=cached.strategy,
                        wall_seconds=time.perf_counter() - started,
                        queue_seconds=queue_seconds,
                        plan_cache_hit=plan_hit,
                        result_cache_hit=True,
                        degradation=cached.degradation,
                        stats=cached.stats,
                        retries=request.retries,
                        retry_causes=list(request.retry_causes),
                    )
        executor = PartitionedExecutor(
            self._source,
            functions=self._functions,
            two_step_aggregation=self._rewrite.two_step_aggregation,
            memory_budget_bytes=request.memory_budget,
            resilience=self._resilience,
            backend=backend,
            spill=self._spill,
            spill_dir=self._spill_dir,
            deadline_seconds=remaining_deadline,
        )
        # The executor borrows this slot's backend; never executor.close().
        result = executor.run(
            compiled.plan, profile=request.profile, cancellation=request.token
        )
        if result.profile is not None:
            result.profile.rewrite = compiled.audit
        if (
            result_key is not None
            and result.profile is None
            and not result.is_partial
        ):
            self.result_cache.put(
                result_key,
                CachedResult(
                    items=list(result.items),
                    stats=result.stats,
                    degradation=result.degradation,
                    strategy=result.strategy,
                ),
            )
        return ServiceResponse(
            request_id=request.id,
            tenant=request.tenant,
            query=request.query,
            items=result.items,
            backend=result.backend,
            strategy=result.strategy,
            wall_seconds=time.perf_counter() - started,
            queue_seconds=queue_seconds,
            plan_cache_hit=plan_hit,
            result_cache_hit=False,
            profile=result.profile,
            degradation=result.degradation,
            stats=result.stats,
            deadline_slack_seconds=result.deadline_slack_seconds,
            is_partial=result.is_partial,
            warnings=result.warnings,
            retries=request.retries,
            retry_causes=list(request.retry_causes),
        )

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict:
        """Service counters plus cache stats (deterministic key order)."""
        with self._lock:
            counters = dict(self._counters)
            counters["rejected_by_reason"] = dict(
                sorted(self._rejected_by_reason.items())
            )
            counters["queued"] = len(self._queue)
            counters["running"] = sum(self._running.values())
            counters["slot_restarts"] = [
                event.to_dict() for event in self._slot_events
            ]
            counters["query_retries"] = [
                event.to_dict() for event in self._retry_events
            ]
            live = self._live_slot_count_locked()
            counters["slots"] = {
                "total": len(self._slots),
                "live": live,
                "abandoned": len(self._slots) - live,
            }
            counters["circuit_breakers"] = {
                tenant: {
                    "state": breaker.state,
                    "consecutive_failures": breaker.failures,
                }
                for tenant, breaker in sorted(self._breakers.items())
            }
        counters["plan_cache"] = self.plan_cache.stats()
        counters["result_cache"] = (
            self.result_cache.stats() if self.result_cache is not None else None
        )
        return counters

    def drain(self, timeout: float | None = None) -> bool:
        """Block until no queries are queued or running; True on success."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._idle:
            while self._queue or any(self._running.values()):
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
        return True

    # -- lifecycle -------------------------------------------------------------

    def close(self, cancel_pending: bool = False) -> None:
        """Shut down: drain (or cancel) pending work, release backends.

        Idempotent.  New submissions are rejected with
        ``AdmissionError("closed", ...)`` as soon as close begins; with
        ``cancel_pending`` queued requests are cancelled and running
        queries are signalled instead of awaited.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = list(self._queue) if cancel_pending else []
            running = list(self._running_requests) if cancel_pending else []
            self._work_ready.notify_all()
        if cancel_pending:
            for request in pending:
                self._cancel(request, "service shutting down")
            for request in running:
                request.token.cancel("service shutting down")
        self.drain()
        with self._lock:
            self._work_ready.notify_all()
        current = threading.current_thread()
        while True:
            # A dying worker may spawn its replacement while we join it
            # (supervision races close), so loop until every slot's
            # *current* thread is down.  Never join ourselves: close()
            # may legally run on a worker thread (a query calling close).
            alive = [
                slot.thread
                for slot in self._slots
                if slot.thread is not None
                and slot.thread is not current
                and slot.thread.is_alive()
            ]
            if not alive:
                break
            for thread in alive:
                thread.join()
        for slot in self._slots:
            try:
                slot.backend.close()
            except Exception:
                pass
        shutil.rmtree(self._flag_dir, ignore_errors=True)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
