"""A long-lived, multi-tenant query service over the partitioned engine.

Everything below this module is one-shot: a
:class:`~repro.JsonProcessor` compiles and runs a single query and its
executor carries per-query mutable state.  :class:`QueryService` is the
long-lived counterpart — the shape of a VXQuery/Hyracks cluster
controller fielding many concurrent queries:

- **long-lived catalogs**: one shared data source; per-query scan
  state (degradation reports, scan counters) is thread-local on the
  catalog, so concurrent query threads never see each other's events;
- **a shared backend pool**: one
  :class:`~repro.hyracks.backends.ExecutionBackend` per concurrency
  slot, owned by that slot's worker thread.  Pools (threads or forked
  processes) persist across queries, so fork/spawn cost is paid once —
  but no backend instance is ever shared by two in-flight queries,
  because backends carry per-run recovery/pool state;
- **admission control**: a bounded queue with per-tenant
  :class:`TenantQuota` limits (max concurrent queries, queue depth,
  memory budget, deadline ceiling).  Over-quota submissions are
  rejected synchronously with a structured
  :class:`~repro.errors.AdmissionError` — they never enter the queue,
  so they cannot crash or starve admitted queries;
- **scheduling**: admitted requests run FIFO, skipping over tenants
  that are at their concurrency limit (no head-of-line blocking across
  tenants).  Each query runs under its own
  :class:`~repro.hyracks.limits.ExecutionLimits` — the tenant deadline
  ceiling plus a per-request filesystem-flag
  :class:`~repro.hyracks.limits.CancellationToken`, so cancellation
  reaches even process-pool workers forked before the cancel;
- **plan cache**: an LRU keyed by (query text, toggle config) — see
  :mod:`repro.service.plan_cache`;
- **result cache** (optional): keyed by plan fingerprint × source
  fingerprints with file-change invalidation — see
  :mod:`repro.service.result_cache`.  The service defaults both the
  result cache and any segment cache it configures to ``content``
  fingerprints: a long-lived server must not serve stale bytes through
  the ``stat`` fingerprint's same-size rewrite window.

Every completed query returns a :class:`ServiceResponse` carrying the
result items plus the per-request telemetry the observability layers
already produce: the
:class:`~repro.observability.profile.QueryProfile` (when profiling)
and the :class:`~repro.resilience.report.DegradationReport`.
"""

from __future__ import annotations

import itertools
import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field

from repro.algebra.operators import DataScan
from repro.algebra.rules import RewriteConfig
from repro.cache.config import resolve_fingerprint_mode
from repro.errors import AdmissionError, ProcessorClosedError, QueryCancelledError
from repro.hyracks.backends import BACKENDS, resolve_backend
from repro.hyracks.executor import PartitionedExecutor
from repro.hyracks.limits import CancellationToken
from repro.observability.profile import resolve_profile_config
from repro.resilience.policies import ResilienceConfig
from repro.service.plan_cache import PlanCache
from repro.service.result_cache import (
    CachedResult,
    ResultCache,
    source_fingerprints,
)


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits for one tenant.

    ``max_concurrent`` queries may execute at once and ``max_queued``
    more may wait; a submission beyond ``max_concurrent + max_queued``
    in flight is rejected.  ``memory_budget_bytes`` is both the cap on
    what a request may ask for and the default budget when it asks for
    nothing; ``deadline_ceiling_seconds`` likewise caps and defaults
    the per-query deadline.  ``None`` means unlimited.
    """

    max_concurrent: int = 2
    max_queued: int = 8
    memory_budget_bytes: int | None = None
    deadline_ceiling_seconds: float | None = None

    def __post_init__(self):
        if self.max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1, got {self.max_concurrent!r}"
            )
        if self.max_queued < 0:
            raise ValueError(
                f"max_queued must be >= 0, got {self.max_queued!r}"
            )
        if (
            self.deadline_ceiling_seconds is not None
            and self.deadline_ceiling_seconds <= 0
        ):
            raise ValueError("deadline_ceiling_seconds must be positive")


@dataclass
class ServiceResponse:
    """One completed query: items plus per-request telemetry."""

    request_id: int
    tenant: str
    query: str
    items: list
    backend: str
    strategy: str
    wall_seconds: float
    queue_seconds: float
    plan_cache_hit: bool
    result_cache_hit: bool
    #: :class:`~repro.observability.profile.QueryProfile` (None unless profiled)
    profile: object = None
    #: :class:`~repro.resilience.report.DegradationReport` of this run
    degradation: object = None
    #: :class:`~repro.hyracks.executor.ExecutionStats` of this run
    stats: object = None
    deadline_slack_seconds: float | None = None
    is_partial: bool = False
    warnings: list = field(default_factory=list)


class _Request:
    """Internal per-submission state shared by ticket and scheduler."""

    __slots__ = (
        "id",
        "tenant",
        "query",
        "profile",
        "memory_budget",
        "deadline",
        "token",
        "event",
        "response",
        "error",
        "state",
        "submitted_at",
    )

    def __init__(self, request_id, tenant, query, profile, memory, deadline, token):
        self.id = request_id
        self.tenant = tenant
        self.query = query
        self.profile = profile
        self.memory_budget = memory
        self.deadline = deadline
        self.token = token
        self.event = threading.Event()
        self.response = None
        self.error = None
        self.state = "queued"
        self.submitted_at = time.perf_counter()


class QueryTicket:
    """Handle on one admitted submission: await the result or cancel."""

    def __init__(self, service: "QueryService", request: _Request):
        self._service = service
        self._request = request

    @property
    def request_id(self) -> int:
        return self._request.id

    @property
    def tenant(self) -> str:
        return self._request.tenant

    def done(self) -> bool:
        return self._request.event.is_set()

    def result(self, timeout: float | None = None) -> ServiceResponse:
        """Block until the query finishes; return or raise its outcome."""
        if not self._request.event.wait(timeout):
            raise TimeoutError(
                f"query {self._request.id} still running after {timeout}s"
            )
        if self._request.error is not None:
            raise self._request.error
        return self._request.response

    def cancel(self, reason: str = "cancelled by client") -> bool:
        """Cancel this query; True if the cancel could still take effect.

        A queued query is withdrawn immediately (its :meth:`result`
        raises :class:`~repro.errors.QueryCancelledError` without ever
        executing); a running query is signalled through its
        cancellation token and unwinds at the next frame boundary.
        """
        return self._service._cancel(self._request, reason)


class QueryService:
    """Long-lived concurrent query service (see module docstring).

    Parameters
    ----------
    source:
        The shared data source (catalog) all queries run against.
    rewrite:
        Rewrite-toggle config applied to every query (default: all
        rules).  Part of the plan-cache key.
    backend:
        Backend *name* (``"sequential"`` | ``"thread"`` | ``"process"``)
        for partition work; ``None`` consults ``REPRO_BACKEND``.  The
        service builds one backend instance per concurrency slot, so
        instances are not accepted here.
    max_concurrent_queries:
        Service-wide concurrency: worker threads × backend slots.
    max_workers:
        Per-query worker cap inside each backend (default: CPU count).
    max_queue_depth:
        Bound on queued-but-not-running requests across all tenants
        (default: ``4 × max_concurrent_queries``).
    default_quota / quotas:
        The :class:`TenantQuota` applied to unknown tenants, and
        per-tenant overrides by name.
    plan_cache_size / result_cache_size:
        LRU capacities; ``result_cache_size=0`` (default) disables
        result caching.
    cache_fingerprint:
        Fingerprint mode for the result cache and any segment cache
        this service configures; defaults to ``"content"`` (a
        long-lived server must detect same-size in-place rewrites).
    segment_cache_dir:
        When given, (re)configures the source's segment cache under
        ``cache_fingerprint``.
    memory_budget_bytes / spill / spill_dir / resilience:
        Per-query execution defaults, as on
        :class:`~repro.JsonProcessor`.
    """

    def __init__(
        self,
        source,
        rewrite: RewriteConfig | None = None,
        backend: str | None = None,
        max_concurrent_queries: int = 2,
        max_workers: int | None = None,
        max_queue_depth: int | None = None,
        default_quota: TenantQuota | None = None,
        quotas: dict[str, TenantQuota] | None = None,
        plan_cache_size: int = 128,
        result_cache_size: int = 0,
        cache_fingerprint: str = "content",
        segment_cache_dir: str | None = None,
        memory_budget_bytes: int | None = None,
        spill: bool = True,
        spill_dir: str | None = None,
        resilience: ResilienceConfig | None = None,
        functions=None,
        cost: bool | None = None,
    ):
        if backend is not None and backend not in BACKENDS:
            raise ValueError(
                f"backend must be a name from {sorted(BACKENDS)} or None; "
                f"the service owns its backend instances"
            )
        if max_concurrent_queries < 1:
            raise ValueError(
                f"max_concurrent_queries must be >= 1, "
                f"got {max_concurrent_queries!r}"
            )
        self._source = source
        self._rewrite = rewrite if rewrite is not None else RewriteConfig.all()
        from repro.stats.cost import resolve_cost_enabled

        self._cost = (
            resolve_cost_enabled(cost) if self._rewrite.cost else False
        )
        self._functions = functions
        self._resilience = resilience
        self._memory_budget = memory_budget_bytes
        self._spill = spill
        self._spill_dir = spill_dir
        self._max_workers = max_workers
        self._fingerprint_mode = resolve_fingerprint_mode(cache_fingerprint)
        if segment_cache_dir is not None:
            configure = getattr(source, "configure_scan", None)
            if configure is not None:
                configure(
                    segment_cache_dir=segment_cache_dir,
                    fingerprint_mode=self._fingerprint_mode,
                )
        self.default_quota = (
            default_quota if default_quota is not None else TenantQuota()
        )
        self.quotas: dict[str, TenantQuota] = dict(quotas or {})
        self.plan_cache = PlanCache(plan_cache_size)
        self.result_cache = (
            ResultCache(result_cache_size) if result_cache_size else None
        )
        self._max_queue_depth = (
            max_queue_depth
            if max_queue_depth is not None
            else 4 * max_concurrent_queries
        )
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._queue: list[_Request] = []
        self._running: dict[str, int] = {}
        self._queued: dict[str, int] = {}
        self._running_requests: list[_Request] = []
        self._closed = False
        self._request_seq = itertools.count(1)
        self._counters = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "rejected": 0,
        }
        self._rejected_by_reason: dict[str, int] = {}
        # Per-request cancel flags live here so a cancel issued after a
        # process-pool worker forked is still observed via the filesystem.
        self._flag_dir = tempfile.mkdtemp(prefix="repro-service-")
        self._backends = [
            resolve_backend(backend, max_workers=max_workers)
            for _ in range(max_concurrent_queries)
        ]
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                args=(slot,),
                name=f"repro-service-{slot}",
                daemon=True,
            )
            for slot in range(max_concurrent_queries)
        ]
        for worker in self._workers:
            worker.start()

    # -- admission -------------------------------------------------------------

    def _quota(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def _reject(self, reason, tenant, message, limit=None, requested=None):
        self._counters["rejected"] += 1
        self._rejected_by_reason[reason] = (
            self._rejected_by_reason.get(reason, 0) + 1
        )
        raise AdmissionError(reason, tenant, message, limit, requested)

    def submit(
        self,
        query: str,
        tenant: str = "default",
        profile=None,
        memory_budget_bytes: int | None = None,
        deadline_seconds: float | None = None,
    ) -> QueryTicket:
        """Admit *query* for *tenant*; returns a ticket, or raises
        :class:`~repro.errors.AdmissionError` synchronously.

        Admission is deterministic in the submission order: given the
        same sequence of submits/finishes, the same submission is
        rejected with the same reason, because every check runs under
        the service lock against exact queued/running counts.
        """
        quota = self._quota(tenant)
        with self._lock:
            if self._closed:
                self._reject("closed", tenant, "service is closed")
            if (
                memory_budget_bytes is not None
                and quota.memory_budget_bytes is not None
                and memory_budget_bytes > quota.memory_budget_bytes
            ):
                self._reject(
                    "memory-quota",
                    tenant,
                    f"requested {memory_budget_bytes} bytes exceeds the "
                    f"tenant budget of {quota.memory_budget_bytes} bytes",
                    limit=quota.memory_budget_bytes,
                    requested=memory_budget_bytes,
                )
            if (
                deadline_seconds is not None
                and quota.deadline_ceiling_seconds is not None
                and deadline_seconds > quota.deadline_ceiling_seconds
            ):
                self._reject(
                    "deadline-quota",
                    tenant,
                    f"requested {deadline_seconds:g}s deadline exceeds the "
                    f"tenant ceiling of {quota.deadline_ceiling_seconds:g}s",
                    limit=quota.deadline_ceiling_seconds,
                    requested=deadline_seconds,
                )
            in_flight = self._running.get(tenant, 0) + self._queued.get(
                tenant, 0
            )
            allowed = quota.max_concurrent + quota.max_queued
            if in_flight >= allowed:
                self._reject(
                    "tenant-quota",
                    tenant,
                    f"{in_flight} queries already in flight "
                    f"(limit {quota.max_concurrent} running "
                    f"+ {quota.max_queued} queued)",
                    limit=allowed,
                    requested=in_flight + 1,
                )
            if len(self._queue) >= self._max_queue_depth:
                self._reject(
                    "service-queue",
                    tenant,
                    f"service admission queue is full "
                    f"({self._max_queue_depth} waiting)",
                    limit=self._max_queue_depth,
                    requested=len(self._queue) + 1,
                )
            request_id = next(self._request_seq)
            token = CancellationToken(
                flag_path=os.path.join(self._flag_dir, f"cancel-{request_id}")
            )
            request = _Request(
                request_id,
                tenant,
                query,
                profile,
                memory_budget_bytes
                if memory_budget_bytes is not None
                else quota.memory_budget_bytes
                if quota.memory_budget_bytes is not None
                else self._memory_budget,
                deadline_seconds
                if deadline_seconds is not None
                else quota.deadline_ceiling_seconds,
                token,
            )
            self._queue.append(request)
            self._queued[tenant] = self._queued.get(tenant, 0) + 1
            self._counters["submitted"] += 1
            self._work_ready.notify()
        return QueryTicket(self, request)

    def execute(self, query: str, tenant: str = "default", **kwargs):
        """Submit and block for the response (one-shot convenience)."""
        return self.submit(query, tenant=tenant, **kwargs).result()

    # -- scheduling ------------------------------------------------------------

    def _next_request(self) -> _Request | None:
        """Claim the next runnable request (None = service shut down).

        FIFO over the admission queue, skipping requests whose tenant
        is at its concurrency limit — a backlogged tenant never blocks
        another tenant's work.
        """
        with self._work_ready:
            while True:
                for index, request in enumerate(self._queue):
                    quota = self._quota(request.tenant)
                    if (
                        self._running.get(request.tenant, 0)
                        < quota.max_concurrent
                    ):
                        del self._queue[index]
                        self._queued[request.tenant] -= 1
                        self._running[request.tenant] = (
                            self._running.get(request.tenant, 0) + 1
                        )
                        self._running_requests.append(request)
                        request.state = "running"
                        return request
                if self._closed:
                    return None
                self._work_ready.wait()

    def _worker_loop(self, slot: int) -> None:
        backend = self._backends[slot]
        while True:
            request = self._next_request()
            if request is None:
                return
            try:
                response = self._execute_request(request, backend)
            except BaseException as error:  # noqa: BLE001 - routed to ticket
                self._finish(request, error=error)
            else:
                self._finish(request, response=response)

    def _finish(self, request: _Request, response=None, error=None) -> None:
        request.response = response
        request.error = error
        with self._lock:
            if request.state == "running":
                self._running[request.tenant] -= 1
                self._running_requests.remove(request)
            request.state = "done"
            if error is None:
                self._counters["completed"] += 1
            elif isinstance(error, QueryCancelledError):
                self._counters["cancelled"] += 1
            else:
                self._counters["failed"] += 1
            # Set the ticket's event inside the critical section: anyone
            # who observes the post-finish counters (a drain() returning,
            # a stats() reader) must also observe the ticket as done.
            request.event.set()
            self._work_ready.notify_all()
            self._idle.notify_all()
        try:
            os.unlink(request.token.flag_path)
        except OSError:
            pass

    def _cancel(self, request: _Request, reason: str) -> bool:
        with self._lock:
            if request.state == "queued":
                self._queue.remove(request)
                self._queued[request.tenant] -= 1
                request.state = "done"
                request.error = QueryCancelledError(reason)
                self._counters["cancelled"] += 1
                self._work_ready.notify_all()
                self._idle.notify_all()
                request.event.set()
                return True
            if request.state == "running":
                request.token.cancel(reason)
                return True
            return False

    # -- statistics ------------------------------------------------------------

    def _stats_snapshot(self):
        if not self._cost:
            return None
        snapshot = getattr(self._source, "stats_snapshot", None)
        if snapshot is None:
            return None
        return snapshot()

    def collection_stats(self, name: str):
        """The source's sampled stats for one collection (or None)."""
        stats = getattr(self._source, "collection_stats", None)
        return stats(name) if stats is not None else None

    def refresh_stats(self, name: str | None = None) -> None:
        """Drop sampled statistics so the next query re-samples.

        The snapshot fingerprint is part of the plan-cache key, so
        queries compiled after a refresh never reuse plans costed
        against the stale statistics.
        """
        refresh = getattr(self._source, "refresh_stats", None)
        if refresh is not None:
            refresh(name)

    # -- execution -------------------------------------------------------------

    def _execute_request(self, request: _Request, backend) -> ServiceResponse:
        started = time.perf_counter()
        queue_seconds = started - request.submitted_at
        compiled, plan_hit = self.plan_cache.get_or_compile(
            request.query, self._rewrite, stats=self._stats_snapshot()
        )
        request.token.check()  # cancelled between dequeue and start
        result_key = None
        # Profiled requests bypass the result cache: a cached response
        # cannot carry a fresh execution profile.
        if (
            self.result_cache is not None
            and resolve_profile_config(request.profile) is None
        ):
            collections = sorted(
                {
                    scan.collection
                    for scan in compiled.plan.operators_of(DataScan)
                }
            )
            fingerprints = source_fingerprints(
                self._source, collections, self._fingerprint_mode
            )
            if fingerprints is not None:
                result_key = (
                    request.query,
                    self._rewrite,
                    getattr(self._source, "on_malformed", None),
                    fingerprints,
                )
                cached = self.result_cache.get(result_key)
                if cached is not None:
                    return ServiceResponse(
                        request_id=request.id,
                        tenant=request.tenant,
                        query=request.query,
                        items=list(cached.items),
                        backend=backend.name,
                        strategy=cached.strategy,
                        wall_seconds=time.perf_counter() - started,
                        queue_seconds=queue_seconds,
                        plan_cache_hit=plan_hit,
                        result_cache_hit=True,
                        degradation=cached.degradation,
                        stats=cached.stats,
                    )
        executor = PartitionedExecutor(
            self._source,
            functions=self._functions,
            two_step_aggregation=self._rewrite.two_step_aggregation,
            memory_budget_bytes=request.memory_budget,
            resilience=self._resilience,
            backend=backend,
            spill=self._spill,
            spill_dir=self._spill_dir,
            deadline_seconds=request.deadline,
        )
        # The executor borrows this slot's backend; never executor.close().
        result = executor.run(
            compiled.plan, profile=request.profile, cancellation=request.token
        )
        if result.profile is not None:
            result.profile.rewrite = compiled.audit
        if (
            result_key is not None
            and result.profile is None
            and not result.is_partial
        ):
            self.result_cache.put(
                result_key,
                CachedResult(
                    items=list(result.items),
                    stats=result.stats,
                    degradation=result.degradation,
                    strategy=result.strategy,
                ),
            )
        return ServiceResponse(
            request_id=request.id,
            tenant=request.tenant,
            query=request.query,
            items=result.items,
            backend=result.backend,
            strategy=result.strategy,
            wall_seconds=time.perf_counter() - started,
            queue_seconds=queue_seconds,
            plan_cache_hit=plan_hit,
            result_cache_hit=False,
            profile=result.profile,
            degradation=result.degradation,
            stats=result.stats,
            deadline_slack_seconds=result.deadline_slack_seconds,
            is_partial=result.is_partial,
            warnings=result.warnings,
        )

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict:
        """Service counters plus cache stats (deterministic key order)."""
        with self._lock:
            counters = dict(self._counters)
            counters["rejected_by_reason"] = dict(
                sorted(self._rejected_by_reason.items())
            )
            counters["queued"] = len(self._queue)
            counters["running"] = sum(self._running.values())
        counters["plan_cache"] = self.plan_cache.stats()
        counters["result_cache"] = (
            self.result_cache.stats() if self.result_cache is not None else None
        )
        return counters

    def drain(self, timeout: float | None = None) -> bool:
        """Block until no queries are queued or running; True on success."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._idle:
            while self._queue or any(self._running.values()):
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
        return True

    # -- lifecycle -------------------------------------------------------------

    def close(self, cancel_pending: bool = False) -> None:
        """Shut down: drain (or cancel) pending work, release backends.

        Idempotent.  New submissions are rejected with
        ``AdmissionError("closed", ...)`` as soon as close begins; with
        ``cancel_pending`` queued requests are cancelled and running
        queries are signalled instead of awaited.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = list(self._queue) if cancel_pending else []
            running = list(self._running_requests) if cancel_pending else []
            self._work_ready.notify_all()
        if cancel_pending:
            for request in pending:
                self._cancel(request, "service shutting down")
            for request in running:
                request.token.cancel("service shutting down")
        self.drain()
        with self._lock:
            self._work_ready.notify_all()
        for worker in self._workers:
            worker.join()
        for backend in self._backends:
            backend.close()
        shutil.rmtree(self._flag_dir, ignore_errors=True)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
