"""Structured self-healing events for the query service.

Everything the :class:`~repro.service.QueryService` supervisor and
retry machinery does is recorded as one of these frozen dataclasses —
picklable, deterministic field order, with a ``to_dict`` for the
``stats()`` snapshot — so operators (and the chaos harness) can audit
every restart and retry instead of inferring them from logs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class SlotRestartEvent:
    """One supervisor action on a slot worker.

    ``kind`` says what happened:

    - ``"worker-death"`` — the slot's worker thread died (a crash in the
      service loop itself, or an injected slot death) and was replaced
      with a fresh thread and a fresh backend;
    - ``"backend-replaced"`` — the slot's backend accumulated
      ``backend_failure_threshold`` consecutive backend-level failures
      and was swapped for a fresh instance (the thread lived on);
    - ``"abandoned"`` — the slot died with its restart budget already
      spent; it stays down for the life of the service.

    ``restarts`` is the slot's lifetime restart count *after* this
    event; ``request_id`` is the request in flight when the slot died
    (None when it died idle).
    """

    slot: int
    kind: str  # "worker-death" | "backend-replaced" | "abandoned"
    restarts: int
    message: str
    request_id: int | None = None

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class QueryRetryEvent:
    """One query-level re-execution of a failed request.

    Queries are read-only, so a request that failed with a classified
    retryable error (see ``QueryService`` docs) is re-queued — at the
    front, preferring a different slot — with whatever remains of its
    original deadline.  ``attempt`` is 1 for the first retry.
    """

    request_id: int
    tenant: str
    attempt: int
    slot: int
    error: str
    message: str

    def to_dict(self) -> dict:
        return asdict(self)
