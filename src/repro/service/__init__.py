"""Long-lived multi-tenant query service (see :mod:`.service`)."""

from repro.errors import AdmissionError
from repro.service.plan_cache import PlanCache
from repro.service.result_cache import (
    CachedResult,
    ResultCache,
    source_fingerprints,
)
from repro.service.service import (
    QueryService,
    QueryTicket,
    ServiceResponse,
    TenantQuota,
)

__all__ = [
    "AdmissionError",
    "CachedResult",
    "PlanCache",
    "QueryService",
    "QueryTicket",
    "ResultCache",
    "ServiceResponse",
    "TenantQuota",
    "source_fingerprints",
]
