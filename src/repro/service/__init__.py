"""Long-lived multi-tenant query service (see :mod:`.service`)."""

from repro.errors import AdmissionError, CacheIOError, SlotFailureError
from repro.service.events import QueryRetryEvent, SlotRestartEvent
from repro.service.plan_cache import PlanCache
from repro.service.result_cache import (
    CachedResult,
    ResultCache,
    source_fingerprints,
)
from repro.service.service import (
    QueryService,
    QueryTicket,
    ServiceResponse,
    TenantQuota,
)

__all__ = [
    "AdmissionError",
    "CacheIOError",
    "CachedResult",
    "PlanCache",
    "QueryRetryEvent",
    "QueryService",
    "QueryTicket",
    "ResultCache",
    "ServiceResponse",
    "SlotFailureError",
    "SlotRestartEvent",
    "TenantQuota",
    "source_fingerprints",
]
