"""Thread-safe LRU cache of compiled query plans.

``compile_query(text, config, stats)`` is pure — parse, translate, the
rewrite fixpoint, and the cost phase depend only on the query text, the
toggle config, and the stats snapshot — so a long-lived service never
needs to compile the same (text, config, snapshot) triple twice.
:class:`RewriteConfig` is a frozen dataclass and the snapshot
contributes its fingerprint string, so the triple is directly hashable
and the cache key *is* the compilation input: two tenants submitting
the same query text under the same service config share one compiled
plan, while a re-registered (re-sampled) collection changes the
fingerprint and can never be served a plan costed against stale
statistics.

Compiled plans are treated as immutable at execution time (the same
contract that lets the process backend pickle one plan into many
workers), so sharing one ``CompiledQuery`` across concurrent service
queries is safe.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.algebra.rules import RewriteConfig
from repro.compiler.pipeline import CompiledQuery, compile_query


class PlanCache:
    """LRU over ``(query text, RewriteConfig) -> CompiledQuery``."""

    def __init__(self, capacity: int = 128):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity!r}")
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get_or_compile(
        self, text: str, config: RewriteConfig, stats=None
    ) -> tuple[CompiledQuery, bool]:
        """Return ``(compiled, was_hit)`` for *text* under *config*.

        *stats* (a :class:`~repro.stats.sampling.StatsSnapshot`, or
        None) feeds the cost phase; its fingerprint is part of the
        cache key so refreshed statistics always recompile.
        """
        fingerprint = (
            stats.fingerprint() if stats is not None and stats else None
        )
        key = (text, config, fingerprint)
        with self._lock:
            compiled = self._entries.get(key)
            if compiled is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return compiled, True
        # Compile outside the lock: compilation is pure, so two threads
        # racing the same cold key at worst compile twice and store the
        # same plan — far better than serializing every compilation.
        compiled = compile_query(text, config, stats=stats)
        with self._lock:
            self.misses += 1
            if self.capacity and key not in self._entries:
                self._entries[key] = compiled
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.evictions += 1
        return compiled, False

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
