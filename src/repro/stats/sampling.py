"""Sampled collection statistics.

A :class:`SourceStatistics` lives on each data source
(:class:`~repro.data.catalog.CollectionCatalog` /
:class:`~repro.data.catalog.InMemorySource`).  Registration invalidates
the collection's entry; the first consumer (usually the cost phase, via
``stats_snapshot``) samples a bounded prefix of each partition — the
first ``sample_limit`` top-level documents, walked recursively — and the
result is memoized until the next registration or an explicit
``refresh_stats``.

Sampling is deterministic: partitions and files are visited in
registration order and the prefix is positional, never random, so the
same data always produces the same :class:`CollectionStats` and the same
:meth:`StatsSnapshot.fingerprint`.  That fingerprint is part of the
service plan-cache key — a refreshed catalog can never serve a plan
costed against stale statistics.

Sampling is also advisory: malformed texts and unreadable files are
skipped silently (their bytes still count toward extrapolation), and a
collection that cannot be sampled at all simply has no stats, which the
cost model treats as "leave the plan alone".

``REPRO_STATS_SAMPLE`` sets the per-partition document sample limit when
no explicit value is given (``repro.envutil`` resolution rule: unset
means the default, set-but-empty or ``0`` disables sampling).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import JsonError, ReproError
from repro.jsonlib.items import canonical_atomic, is_atomic, sizeof_item
from repro.jsonlib.parser import parse_many

#: environment variable consulted when no explicit sample limit is given.
SAMPLE_ENV_VAR = "REPRO_STATS_SAMPLE"

#: documents sampled per partition when nothing else is configured.
DEFAULT_SAMPLE_LIMIT = 64

#: distinct-value tracking stops growing past this many values per key.
_DISTINCT_CAP = 256

#: how many most-common values each key keeps (skew detection input).
_TOP_VALUES = 8

#: value-frequency counting tracks at most this many candidate values.
_TOP_TRACK_CAP = 4 * _TOP_VALUES

#: per-document guard: stop walking a pathological document past this.
_MAX_WALK_NODES = 10_000


def resolve_stats_sample(explicit: int | None = None) -> int:
    """Resolve the per-partition sample limit (0 disables sampling).

    An explicit argument wins; otherwise ``REPRO_STATS_SAMPLE`` is
    consulted (set-but-empty means off), else :data:`DEFAULT_SAMPLE_LIMIT`.
    """
    if explicit is not None:
        limit = int(explicit)
        if limit < 0:
            raise ReproError(
                f"stats sample limit must be >= 0, got {explicit!r}"
            )
        return limit
    from repro.envutil import env_setting

    value = env_setting(SAMPLE_ENV_VAR)
    if value is None:
        return DEFAULT_SAMPLE_LIMIT
    if not value:
        return 0
    try:
        limit = int(value)
    except ValueError:
        raise ReproError(
            f"{SAMPLE_ENV_VAR} must be an integer, got {value!r}"
        ) from None
    if limit < 0:
        raise ReproError(f"{SAMPLE_ENV_VAR} must be >= 0, got {value!r}")
    return limit


@dataclass(frozen=True)
class KeyStats:
    """Sampled statistics of one object key (merged across nesting depth)."""

    key: str
    count: int  # occurrences among sampled objects
    distinct: int  # distinct atomic values seen (capped)
    distinct_saturated: bool  # True when the distinct cap was hit
    avg_bytes: float  # mean sizeof_item of the values
    arrays: int  # occurrences whose value is an array
    avg_array_len: float  # mean length of those arrays
    top: tuple = ()  # ((canonical_atomic, count), ...) most-common first

    def _fingerprint_parts(self):
        return (
            self.key,
            self.count,
            self.distinct,
            self.distinct_saturated,
            round(self.avg_bytes, 6),
            self.arrays,
            round(self.avg_array_len, 6),
            self.top,
        )


@dataclass(frozen=True)
class PartitionStats:
    """Sampled prefix of one partition plus its extrapolation inputs."""

    index: int
    sampled_documents: int
    sampled_objects: int  # nested objects walked (documents included)
    sampled_bytes: int  # text bytes of the consumed prefix
    total_bytes: int  # full partition size
    exhausted: bool  # True when the whole partition was sampled
    root_arrays: int = 0  # sampled documents that are arrays
    root_members: int = 0  # total members of those arrays

    def _scale(self) -> float:
        if self.exhausted or self.sampled_bytes <= 0:
            return 1.0
        return max(1.0, self.total_bytes / self.sampled_bytes)

    @property
    def estimated_documents(self) -> int:
        return round(self.sampled_documents * self._scale())

    @property
    def estimated_objects(self) -> int:
        return round(self.sampled_objects * self._scale())

    def _fingerprint_parts(self):
        return (
            self.index,
            self.sampled_documents,
            self.sampled_objects,
            self.sampled_bytes,
            self.total_bytes,
            self.exhausted,
            self.root_arrays,
            self.root_members,
        )


@dataclass(frozen=True)
class CollectionStats:
    """One collection's sampled statistics (picklable, deterministic)."""

    collection: str
    sample_limit: int
    partitions: tuple = ()
    keys: tuple = ()  # KeyStats sorted by key name
    _by_key: dict = field(
        default=None, repr=False, compare=False, hash=False
    )

    def __post_init__(self):
        object.__setattr__(
            self, "_by_key", {stats.key: stats for stats in self.keys}
        )

    def __getstate__(self):
        return {
            "collection": self.collection,
            "sample_limit": self.sample_limit,
            "partitions": self.partitions,
            "keys": self.keys,
        }

    def __setstate__(self, state):
        for name, value in state.items():
            object.__setattr__(self, name, value)
        object.__setattr__(
            self, "_by_key", {stats.key: stats for stats in self.keys}
        )

    @property
    def documents(self) -> int:
        """Estimated top-level documents across all partitions."""
        return sum(p.estimated_documents for p in self.partitions)

    @property
    def objects(self) -> int:
        """Estimated nested objects (records) across all partitions."""
        return sum(p.estimated_objects for p in self.partitions)

    @property
    def sampled_objects(self) -> int:
        return sum(p.sampled_objects for p in self.partitions)

    @property
    def root_fanout(self) -> float | None:
        """Mean length of array documents (None when none were sampled).

        The fanout of a leading ``()`` step over a collection of
        array-shaped files — ``collection("/x")()``.
        """
        arrays = sum(p.root_arrays for p in self.partitions)
        if not arrays:
            return None
        return sum(p.root_members for p in self.partitions) / arrays

    def key(self, name: str) -> KeyStats | None:
        return self._by_key.get(name)

    def fingerprint(self) -> str:
        payload = (
            self.collection,
            self.sample_limit,
            tuple(p._fingerprint_parts() for p in self.partitions),
            tuple(k._fingerprint_parts() for k in self.keys),
        )
        return hashlib.sha1(repr(payload).encode("utf-8")).hexdigest()


class StatsSnapshot:
    """Immutable ``collection -> CollectionStats`` mapping with a fingerprint.

    This is what the cost phase consumes and what the service plan-cache
    key embeds: two compilations with the same query text, the same
    rewrite config, and the same snapshot fingerprint are interchangeable.
    """

    __slots__ = ("_collections",)

    def __init__(self, collections: dict[str, CollectionStats]):
        self._collections = dict(collections)

    def __bool__(self) -> bool:
        return bool(self._collections)

    def __len__(self) -> int:
        return len(self._collections)

    def collections(self) -> list[str]:
        return sorted(self._collections)

    def for_collection(self, name: str) -> CollectionStats | None:
        return self._collections.get(_normalize(name))

    def fingerprint(self) -> str:
        payload = tuple(
            (name, self._collections[name].fingerprint())
            for name in sorted(self._collections)
        )
        return hashlib.sha1(repr(payload).encode("utf-8")).hexdigest()


def _normalize(name: str) -> str:
    return "/" + name.strip("/")


class _KeyAccumulator:
    __slots__ = ("count", "bytes", "values", "saturated", "counts",
                 "arrays", "array_members")

    def __init__(self):
        self.count = 0
        self.bytes = 0
        self.values: set = set()
        self.saturated = False
        self.counts: dict = {}
        self.arrays = 0
        self.array_members = 0

    def observe(self, value) -> None:
        self.count += 1
        self.bytes += sizeof_item(value)
        if isinstance(value, list):
            self.arrays += 1
            self.array_members += len(value)
        if is_atomic(value):
            canonical = canonical_atomic(value)
            if len(self.values) < _DISTINCT_CAP:
                self.values.add(canonical)
            elif canonical not in self.values:
                self.saturated = True
            if canonical in self.counts or len(self.counts) < _TOP_TRACK_CAP:
                self.counts[canonical] = self.counts.get(canonical, 0) + 1

    def finish(self, key: str) -> KeyStats:
        top = tuple(
            sorted(
                self.counts.items(), key=lambda pair: (-pair[1], repr(pair[0]))
            )[:_TOP_VALUES]
        )
        return KeyStats(
            key=key,
            count=self.count,
            distinct=len(self.values),
            distinct_saturated=self.saturated,
            avg_bytes=self.bytes / self.count if self.count else 0.0,
            arrays=self.arrays,
            avg_array_len=(
                self.array_members / self.arrays if self.arrays else 0.0
            ),
            top=top,
        )


def _walk_document(doc, keys: dict[str, _KeyAccumulator]) -> int:
    """Count nested objects of *doc* and accumulate per-key stats."""
    objects = 0
    budget = _MAX_WALK_NODES
    stack = [doc]
    while stack and budget > 0:
        budget -= 1
        node = stack.pop()
        if isinstance(node, dict):
            objects += 1
            for key, value in node.items():
                acc = keys.get(key)
                if acc is None:
                    acc = keys[key] = _KeyAccumulator()
                acc.observe(value)
                if isinstance(value, (dict, list)):
                    stack.append(value)
        elif isinstance(node, list):
            stack.extend(
                child for child in node if isinstance(child, (dict, list))
            )
    return objects


def sample_collection(source, name: str, sample_limit: int) -> CollectionStats | None:
    """Sample *name* from *source*, or None when it cannot be sampled.

    *source* must provide ``stats_partitions(name)`` returning, per
    partition, ``(texts, total_bytes)`` where *texts* lazily yields the
    partition's raw JSON texts in registration order.
    """
    if sample_limit <= 0:
        return None
    try:
        partitions = source.stats_partitions(name)
    except ReproError:
        return None
    partition_stats: list[PartitionStats] = []
    keys: dict[str, _KeyAccumulator] = {}
    for index, (texts, total_bytes) in enumerate(partitions):
        documents = 0
        objects = 0
        sampled_bytes = 0
        root_arrays = 0
        root_members = 0
        exhausted = True
        for text in texts:
            if documents >= sample_limit:
                exhausted = False
                break
            sampled_bytes += len(text)
            try:
                docs = parse_many(text)
            except JsonError:
                continue
            for doc in docs:
                documents += 1
                if isinstance(doc, list):
                    root_arrays += 1
                    root_members += len(doc)
                objects += _walk_document(doc, keys)
        partition_stats.append(
            PartitionStats(
                index=index,
                sampled_documents=documents,
                sampled_objects=objects,
                sampled_bytes=sampled_bytes,
                total_bytes=total_bytes,
                exhausted=exhausted,
                root_arrays=root_arrays,
                root_members=root_members,
            )
        )
    return CollectionStats(
        collection=_normalize(name),
        sample_limit=sample_limit,
        partitions=tuple(partition_stats),
        keys=tuple(
            keys[key].finish(key) for key in sorted(keys)
        ),
    )


class SourceStatistics:
    """Per-source stats registry: invalidate on register, sample lazily.

    Memoized per collection; ``None`` entries mean "sampling failed or
    disabled" and are also memoized so a missing collection is not
    rescanned on every compile.  Plain-dict state, so it pickles into
    process-backend work units along with its owning source.
    """

    def __init__(self, sample_limit: int | None = None):
        self.sample_limit = resolve_stats_sample(sample_limit)
        self._stats: dict[str, CollectionStats | None] = {}

    @property
    def enabled(self) -> bool:
        return self.sample_limit > 0

    def invalidate(self, name: str | None = None) -> None:
        """Drop memoized stats for one collection (or all of them)."""
        if name is None:
            self._stats.clear()
        else:
            self._stats.pop(_normalize(name), None)

    def collection_stats(self, source, name: str) -> CollectionStats | None:
        if not self.enabled:
            return None
        key = _normalize(name)
        if key not in self._stats:
            self._stats[key] = sample_collection(
                source, key, self.sample_limit
            )
        return self._stats[key]

    def snapshot(self, source, names) -> StatsSnapshot:
        """Snapshot over *names* (collections that sampled successfully)."""
        collections: dict[str, CollectionStats] = {}
        for name in names:
            stats = self.collection_stats(source, name)
            if stats is not None:
                collections[_normalize(name)] = stats
        return StatsSnapshot(collections)
