"""Cost-based join planning over a sampled :class:`StatsSnapshot`.

The rewrite fixpoint is purely structural: it never looks at the data,
so hash joins always build on the right, every join exchanges both
sides, and skewed keys hot-spot one bucket.  This module adds the
data-dependent phase that runs *after* the fixpoint when statistics are
available:

* **Join ordering** — multi-join graphs are re-associated left-deep,
  greedily joining the smallest connected inputs first.
* **Build-side choice** — the estimated-smaller input becomes the hash
  build side (``Join.build_side``).
* **Broadcast exchange** — when one side is tiny and the other is much
  larger, the tiny side is replicated to every partition instead of
  hash-exchanging both sides (``Join.exchange``).
* **Skew splitting** — join-key values that dominate the sample are
  carried as ``Join.skew_keys``; the exchange replicates the hot build
  rows and spreads the hot probe rows round-robin.

Every decision is a plan-annotation (or a re-association of existing
operators), recorded through the same :class:`RewriteAudit` as the
rewrite rules, and deterministic given the snapshot: ties break on
original operand order, candidate scans sort by name, and the sampled
statistics themselves are positional.  The phase is advisory — with no
snapshot (or ``REPRO_COST`` off) plans are byte-identical to today's.
"""

from __future__ import annotations

from repro.algebra.expressions import (
    AndExpr,
    ComparisonExpr,
    Expression,
    PathStepExpr,
)
from repro.algebra.operators import (
    Aggregate,
    Assign,
    DataScan,
    GroupBy,
    Join,
    Operator,
    Select,
    Subplan,
    Unnest,
)
from repro.algebra.plan import LogicalPlan
from repro.algebra.rules.base import conjuncts, subtree_variables
from repro.jsonlib.path import KeysOrMembers, ValueByIndex, ValueByKey
from repro.stats.sampling import CollectionStats, KeyStats, StatsSnapshot

#: environment variable consulted when no explicit cost toggle is given.
COST_ENV_VAR = "REPRO_COST"

#: cardinality assumed for a scan of a collection without statistics.
DEFAULT_CARDINALITY = 1024.0

#: members assumed per array-unnest step when the stats don't say.
DEFAULT_FANOUT = 4.0

#: selectivity assumed for a predicate the model can't estimate.
DEFAULT_SELECTIVITY = 0.5

#: broadcast only sides estimated at most this many tuples ...
BROADCAST_MAX_TUPLES = 512.0

#: ... and only when the other side is at least this many times larger.
BROADCAST_MIN_RATIO = 4.0

#: swap the build side only on a clear win, not an estimation wobble.
BUILD_SWAP_MARGIN = 0.9

#: a key value is "hot" when it holds this share of the sampled values...
SKEW_MIN_SHARE = 0.125

#: ... over at least this many sampled occurrences.
SKEW_MIN_COUNT = 8


def resolve_cost_enabled(explicit: bool | None = None) -> bool:
    """Resolve the cost-phase toggle (``repro.envutil`` resolution rule).

    An explicit argument wins; otherwise ``REPRO_COST`` is consulted
    (unset means on; set-but-empty or ``0``/``off``/``false``/``no``
    means off; anything else means on).
    """
    if explicit is not None:
        return bool(explicit)
    from repro.envutil import env_setting

    value = env_setting(COST_ENV_VAR)
    if value is None:
        return True
    return value.strip().lower() not in ("", "0", "off", "false", "no")


# ---------------------------------------------------------------------------
# Cardinality model
# ---------------------------------------------------------------------------


class CostModel:
    """Cardinality estimates for logical operators from sampled stats.

    Estimates are coarse — the consumers only ever *compare* two
    estimates (which join input is smaller, is one side tiny) — but they
    are deterministic functions of the snapshot, which is what the
    byte-identity guarantees need.
    """

    def __init__(self, snapshot: StatsSnapshot):
        self.snapshot = snapshot

    # -- operator cardinalities ---------------------------------------

    def cardinality(self, op: Operator) -> float:
        """Estimated tuples produced by *op* (always >= 1)."""
        if isinstance(op, DataScan):
            return self._scan_cardinality(op)
        if isinstance(op, Select):
            return max(
                1.0,
                self.cardinality(op.input_op) * self._selectivity(op),
            )
        if isinstance(op, Unnest):
            return max(
                1.0,
                self.cardinality(op.input_op) * self._fanout(op.expression, op),
            )
        if isinstance(op, Join):
            return self._join_cardinality(op)
        if isinstance(op, Aggregate):
            return 1.0
        if isinstance(op, GroupBy):
            return self._group_cardinality(op)
        if isinstance(op, (Assign, Subplan)):
            return self.cardinality(op.input_op)
        inputs = op.inputs
        if inputs:
            return self.cardinality(inputs[0])
        return 1.0

    def _scan_cardinality(self, scan: DataScan) -> float:
        stats = self.snapshot.for_collection(scan.collection)
        if stats is None:
            return DEFAULT_CARDINALITY
        card = float(max(1, stats.documents))
        last_key: KeyStats | None = None
        at_root = True
        for step in scan.project_path:
            if isinstance(step, ValueByKey):
                last_key = stats.key(step.key)
                if last_key is not None and stats.sampled_objects:
                    presence = last_key.count / stats.sampled_objects
                    card *= max(min(presence, 1.0), 1e-3)
            elif isinstance(step, KeysOrMembers):
                if last_key is not None and last_key.arrays:
                    card *= max(1.0, last_key.avg_array_len)
                elif at_root and stats.root_fanout is not None:
                    card *= max(1.0, stats.root_fanout)
                else:
                    card *= DEFAULT_FANOUT
                last_key = None
            elif isinstance(step, ValueByIndex):
                last_key = None
            at_root = False
        return max(1.0, card)

    def _join_cardinality(self, join: Join) -> float:
        left = self.cardinality(join.left)
        right = self.cardinality(join.right)
        distinct = 1.0
        for conjunct in conjuncts(join.condition):
            if not (
                isinstance(conjunct, ComparisonExpr) and conjunct.op == "eq"
            ):
                continue
            sides = [
                self._field_distinct(conjunct.left, join),
                self._field_distinct(conjunct.right, join),
            ]
            known = [d for d in sides if d is not None]
            if known:
                distinct = max(distinct, *known)
        if distinct <= 1.0:
            # No usable key stats: assume a key join keeps roughly the
            # larger side, a pure cross product multiplies.
            has_eq = any(
                isinstance(c, ComparisonExpr) and c.op == "eq"
                for c in conjuncts(join.condition)
            )
            return max(left, right) if has_eq else max(1.0, left * right)
        return max(1.0, left * right / distinct)

    def _group_cardinality(self, op: GroupBy) -> float:
        card = self.cardinality(op.input_op)
        groups = card**0.5
        for _, expression in op.keys:
            distinct = self._field_distinct(expression, op)
            if distinct is not None:
                groups = min(groups if groups > 1.0 else distinct, distinct)
        return max(1.0, min(card, groups))

    # -- expression-level estimates -----------------------------------

    def _selectivity(self, op: Select) -> float:
        selectivity = 1.0
        for conjunct in conjuncts(op.condition):
            selectivity *= self._conjunct_selectivity(conjunct, op)
        return max(selectivity, 1e-4)

    def _conjunct_selectivity(self, conjunct: Expression, scope: Operator) -> float:
        if not isinstance(conjunct, ComparisonExpr):
            return DEFAULT_SELECTIVITY
        for side in (conjunct.left, conjunct.right):
            distinct = self._field_distinct(side, scope)
            if distinct is not None and distinct > 0:
                if conjunct.op == "eq":
                    return 1.0 / distinct
                return min(DEFAULT_SELECTIVITY, 1.0)
        return DEFAULT_SELECTIVITY

    def _fanout(self, expression: Expression, scope: Operator) -> float:
        stats = self._field_stats(expression, scope)
        if stats is not None and stats.arrays:
            return max(1.0, stats.avg_array_len)
        return DEFAULT_FANOUT

    def _field_distinct(self, expression: Expression, scope: Operator) -> float | None:
        stats = self._field_stats(expression, scope)
        if stats is None or stats.count <= 0:
            return None
        distinct = float(stats.distinct)
        if stats.distinct_saturated:
            # The cap was hit: the true count is unknown but at least
            # this large; scale with the sample so bigger keys look
            # more selective rather than all saturating identically.
            distinct = max(distinct, stats.count / 2.0)
        return max(distinct, 1.0)

    def _field_stats(self, expression: Expression, scope: Operator) -> KeyStats | None:
        """Stats of the object key *expression* finally navigates into."""
        field = key_field(expression)
        if field is None:
            return None
        best: KeyStats | None = None
        for stats in self._scope_collections(scope):
            candidate = stats.key(field)
            if candidate is not None and (
                best is None or candidate.count > best.count
            ):
                best = candidate
        return best

    def _scope_collections(self, scope: Operator) -> list[CollectionStats]:
        found: dict[str, CollectionStats] = {}
        for op in LogicalPlan(scope).iter_operators():
            if isinstance(op, DataScan):
                stats = self.snapshot.for_collection(op.collection)
                if stats is not None:
                    found.setdefault(stats.collection, stats)
        return [found[name] for name in sorted(found)]


def key_field(expression: Expression) -> str | None:
    """The object key name an expression finally navigates into, if any.

    ``$t("station")`` and ``$r("properties")("station")`` give
    ``station``; anything not ending in a :class:`ValueByKey` step gives
    ``None``.  Key-name statistics are merged across nesting depth, so
    the final step is all the lookup needs.
    """
    if not isinstance(expression, PathStepExpr):
        return None
    step = expression.step
    if isinstance(step, ValueByKey):
        return step.key
    return None


# ---------------------------------------------------------------------------
# The planning phase
# ---------------------------------------------------------------------------


def apply_cost_planning(
    plan: LogicalPlan,
    snapshot: StatsSnapshot | None,
    audit=None,
    trace: list | None = None,
) -> LogicalPlan:
    """Apply the cost-based decisions to *plan*, in a fixed order.

    Runs join re-ordering, then build-side choice, then exchange
    selection, then skew-key detection; each category that changes the
    plan is recorded as one audit firing (``CostJoinOrder``,
    ``CostBuildSide``, ``CostBroadcast``, ``CostSkewSplit``) and, when
    *trace* is given, appended as an explain step.
    """
    if snapshot is None or not snapshot:
        return plan
    model = CostModel(snapshot)
    for name, transform in (
        ("CostJoinOrder", _order_joins),
        ("CostBuildSide", _choose_build_sides),
        ("CostBroadcast", _choose_exchanges),
        ("CostSkewSplit", _mark_skew),
    ):
        rewritten = transform(plan, model)
        if rewritten is not plan:
            if audit is not None:
                audit.record(name, plan, rewritten)
            if trace is not None:
                trace.append((name, rewritten))
            plan = rewritten
    return plan


def _transform_joins(plan: LogicalPlan, visit) -> LogicalPlan:
    changed = False

    def visitor(op: Operator) -> Operator:
        nonlocal changed
        if isinstance(op, Join):
            replacement = visit(op)
            if replacement is not None:
                changed = True
                return replacement
        return op

    rewritten = plan.transform_bottom_up(visitor)
    return rewritten if changed else plan


# -- build side --------------------------------------------------------


def _hash_keys(join: Join):
    from repro.hyracks.operators import split_join_condition

    return split_join_condition(join)


def _choose_build_sides(plan: LogicalPlan, model: CostModel) -> LogicalPlan:
    def visit(join: Join) -> Join | None:
        left_keys, _, _ = _hash_keys(join)
        if not left_keys:
            return None  # nested-loop join: no build side to choose
        left = model.cardinality(join.left)
        right = model.cardinality(join.right)
        side = "left" if left < right * BUILD_SWAP_MARGIN else "right"
        if side == join.build_side:
            return None
        return join.with_physical(build_side=side)

    return _transform_joins(plan, visit)


# -- exchange ----------------------------------------------------------


def _choose_exchanges(plan: LogicalPlan, model: CostModel) -> LogicalPlan:
    def visit(join: Join) -> Join | None:
        left_keys, _, _ = _hash_keys(join)
        if not left_keys:
            return None
        left = model.cardinality(join.left)
        right = model.cardinality(join.right)
        small, big = min(left, right), max(left, right)
        if small > BROADCAST_MAX_TUPLES or big < small * BROADCAST_MIN_RATIO:
            return None
        exchange = "broadcast-left" if left <= right else "broadcast-right"
        if exchange == join.exchange:
            return None
        # The broadcast side is replicated everywhere, so it is also
        # the natural build side: keep the two decisions consistent.
        build_side = "left" if exchange == "broadcast-left" else "right"
        return join.with_physical(build_side=build_side, exchange=exchange)

    return _transform_joins(plan, visit)


# -- skew --------------------------------------------------------------


def _mark_skew(plan: LogicalPlan, model: CostModel) -> LogicalPlan:
    def visit(join: Join) -> Join | None:
        left_keys, right_keys, _ = _hash_keys(join)
        if len(left_keys) != 1 or join.exchange != "hash":
            return None
        # "probe" here is the non-build side: its hot rows are spread
        # round-robin while the (smaller) build side's are replicated.
        probe_expr = (
            left_keys[0] if join.build_side == "right" else right_keys[0]
        )
        probe_scope = join.left if join.build_side == "right" else join.right
        stats = model._field_stats(probe_expr, probe_scope)
        if stats is None or stats.count < SKEW_MIN_COUNT:
            return None
        hot = []
        for value, count in stats.top:
            if count >= SKEW_MIN_COUNT and count / stats.count >= SKEW_MIN_SHARE:
                hot.append(((value,),))
        if not hot:
            return None
        skew_keys = tuple(sorted(hot, key=repr))
        if skew_keys == join.skew_keys:
            return None
        return join.with_physical(skew_keys=skew_keys)

    return _transform_joins(plan, visit)


# -- join ordering -----------------------------------------------------


def _order_joins(plan: LogicalPlan, model: CostModel) -> LogicalPlan:
    """Re-associate chains of >= 2 nested joins greedily by cardinality."""

    def find_root(op: Operator, parent_is_join: bool, out: list) -> None:
        is_join = isinstance(op, Join)
        if is_join and not parent_is_join:
            out.append(op)
        for child in op.inputs:
            find_root(child, is_join, out)

    roots: list[Join] = []
    find_root(plan.root, False, roots)
    for root in roots:
        reordered = _reorder_tree(root, model)
        if reordered is not None:
            from repro.algebra.rules.base import replace_operator

            return replace_operator(plan, root, reordered)
    return plan


def _reorder_tree(root: Join, model: CostModel) -> Join | None:
    leaves: list[Operator] = []
    predicates: list[Expression] = []

    def collect(op: Operator) -> None:
        if isinstance(op, Join) and not op.annotated:
            predicates.extend(
                c
                for c in conjuncts(op.condition)
                if not _is_true_literal(c)
            )
            collect(op.left)
            collect(op.right)
        else:
            leaves.append(op)

    collect(root)
    if len(leaves) < 3:
        return None  # a 2-way join has no ordering freedom beyond build side

    leaf_vars = [subtree_variables(leaf) for leaf in leaves]
    all_vars = set().union(*leaf_vars)
    for predicate in predicates:
        if not predicate.free_variables() <= all_vars:
            return None  # correlated condition: leave the tree alone

    cards = [model.cardinality(leaf) for leaf in leaves]
    order = _greedy_order(leaves, leaf_vars, cards, predicates)
    if order is None or order == list(range(len(leaves))):
        return None

    # Rebuild left-deep in the chosen order, attaching each predicate to
    # the first join where all its variables are bound.
    remaining = list(predicates)
    bound = set(leaf_vars[order[0]])
    current: Operator = leaves[order[0]]
    for position in order[1:]:
        bound |= leaf_vars[position]
        applicable = [
            p for p in remaining if p.free_variables() <= bound
        ]
        remaining = [p for p in remaining if p not in applicable]
        condition = _and_all(applicable)
        current = Join(current, leaves[position], condition)
    if remaining:
        return None  # should be unreachable given the closure check above
    return current if isinstance(current, Join) else None


def _greedy_order(leaves, leaf_vars, cards, predicates) -> list[int] | None:
    """Greedy smallest-connected-first order; None when disconnected."""
    count = len(leaves)
    start = min(range(count), key=lambda i: (cards[i], i))
    order = [start]
    bound = set(leaf_vars[start])
    remaining = set(range(count)) - {start}
    while remaining:
        connected = [
            i
            for i in sorted(remaining)
            if any(
                p.free_variables() & bound
                and p.free_variables() <= bound | leaf_vars[i]
                for p in predicates
            )
        ]
        if not connected:
            # Re-ordering would introduce a cross product the original
            # plan may not have had: abstain rather than risk a blowup.
            return None
        best = min(connected, key=lambda i: (cards[i], i))
        order.append(best)
        bound |= leaf_vars[best]
        remaining.discard(best)
    return order


def _is_true_literal(expression: Expression) -> bool:
    from repro.algebra.expressions import Literal

    return isinstance(expression, Literal) and expression.sequence == [True]


def _and_all(predicates: list[Expression]) -> Expression:
    from repro.algebra.expressions import Literal

    if not predicates:
        return Literal([True])
    if len(predicates) == 1:
        return predicates[0]
    return AndExpr(predicates)
