"""Statistics catalog and cost-based planning.

``sampling`` builds :class:`CollectionStats` snapshots from a bounded
prefix of each partition at registration time; ``cost`` consumes a
:class:`StatsSnapshot` to pick hash-join build sides, order multi-join
graphs, switch tiny-side exchanges to broadcast, and split skewed
exchange buckets.  Both halves are deterministic given the snapshot, so
plans (and therefore results) are reproducible across backends.
"""

from repro.stats.sampling import (
    DEFAULT_SAMPLE_LIMIT,
    SAMPLE_ENV_VAR,
    CollectionStats,
    KeyStats,
    PartitionStats,
    SourceStatistics,
    StatsSnapshot,
    resolve_stats_sample,
)
from repro.stats.cost import (
    COST_ENV_VAR,
    CostModel,
    apply_cost_planning,
    resolve_cost_enabled,
)

__all__ = [
    "DEFAULT_SAMPLE_LIMIT",
    "SAMPLE_ENV_VAR",
    "COST_ENV_VAR",
    "CollectionStats",
    "KeyStats",
    "PartitionStats",
    "SourceStatistics",
    "StatsSnapshot",
    "CostModel",
    "apply_cost_planning",
    "resolve_cost_enabled",
    "resolve_stats_sample",
]
